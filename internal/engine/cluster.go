package engine

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
	"unbiasedfl/internal/transport"
)

// DefaultNodeRetry is the dial policy a healing cluster uses to revive a
// failed node: a handful of quick attempts with capped backoff, sized so a
// reconnect completes well inside a typical round deadline.
var DefaultNodeRetry = transport.RetryPolicy{
	Attempts: 8,
	Base:     25 * time.Millisecond,
	Max:      500 * time.Millisecond,
}

// DefaultMaxRespawns bounds how many times one node is revived over a run.
const DefaultMaxRespawns = 8

// errNodeDown marks a dispatch to a client whose node is currently dead
// (crashed earlier and not yet re-registered).
var errNodeDown = errors.New("engine: node down")

// ClusterOptions tunes the multi-node TCP backend.
type ClusterOptions struct {
	// Addr is the coordinator's listen address (default "127.0.0.1:0").
	Addr string
	// Timeout bounds every coordinator-side socket operation (default 30s).
	Timeout time.Duration
	// HandshakeTimeout bounds each node's version handshake + hello on the
	// accept path (0 = transport.DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// NodeDelay, when non-nil, returns a real wall-clock stall a node
	// applies before computing each dispatched update — straggler realism
	// at the socket layer. It changes reply arrival order and wall time,
	// never the result: aggregation order is fixed by the orchestrator.
	NodeDelay func(client int) time.Duration
	// RoundTimeout, when positive, switches the backend into self-healing
	// mode: every dispatch runs under this deadline, a node that crashes,
	// disconnects, or misses the deadline forfeits the round (it is simply
	// recorded as unavailable — the regime the unbiased aggregation rule
	// already prices in) and is revived in the background with
	// exponential-backoff redial. Zero keeps the strict historical
	// behaviour: any node failure fails the round.
	RoundTimeout time.Duration
	// NodeFault, when non-nil, is consulted by every node at each round
	// start — the crash/hang injection seam the self-healing tests drive.
	// Crash severs the node's connection mid-round; Delay stalls it (a hung
	// peer when the delay exceeds RoundTimeout). Skip is meaningless in a
	// coordinated session and is ignored.
	NodeFault func(client, round int) transport.RoundFault
	// Retry tunes node dialing, both at boot and when a healing cluster
	// revives a dead node (zero value: DefaultNodeRetry).
	Retry transport.RetryPolicy
	// MaxRespawns bounds per-node revivals (0 = DefaultMaxRespawns).
	MaxRespawns int
}

// healing reports whether self-healing mode is on.
func (o ClusterOptions) healing() bool { return o.RoundTimeout > 0 }

// clusterSlot is the coordinator's view of one node: the live connection
// (when ready) and the cancel handle of the node goroutine currently
// responsible for this client. All fields are guarded by ClusterBackend.mu;
// the codec is used outside the lock only by its single current owner (the
// dispatch goroutine of a ready slot, or the registration path of a
// not-ready one).
type clusterSlot struct {
	codec  *transport.Codec
	conn   net.Conn
	ready  bool
	cancel context.CancelFunc
	// pending marks a revival in flight, so one dead node does not spawn a
	// second dialer every round it stays down.
	pending bool
	// gen counts node goroutines spawned for this slot; an exiting
	// goroutine only clears pending if it is still the current generation.
	gen int
	// parked holds a prospective member's connection: a node that sent
	// MsgJoin before its membership epoch. It is welcomed — handed its
	// cursor and marked ready — at the epoch boundary (ApplyEpoch), which is
	// the only moment a roster may change.
	parked   *transport.Codec
	parkConn net.Conn
}

// ClusterBackend executes local updates as a real multi-node federation: a
// TCP coordinator plus one socket node per client on loopback, speaking the
// versioned framed protocol of internal/transport. It absorbs the round
// dispatch previously split between transport.Server and
// scenario.RunCluster.
//
// Participation is decided centrally by the orchestrator (the session is
// marked Coordinated in the welcome): a round start is itself the
// invitation, so a node never draws willingness coins. Each node owns the
// same clientExec — fused local steps, private RNG as the n-th Split of the
// spec seed — that LocalBackend uses in-process, and gob transports float64
// slices bit-exactly, so a cluster run's trace is byte-identical to the
// local backend's.
//
// The coordinator's cursor table is the single source of truth for every
// client's executor state: a node reports its post-update cursor inside
// each MsgUpdate, and receives its position inside MsgWelcome — so a fresh
// boot, a checkpoint resume, and a mid-run reconnect are the same protocol,
// and whatever divergent state a crashed node held is discarded with it.
//
// With Spec.GroupSize > 1 the backend switches to multiplexed group mode
// (protocol v5): one socket node hosts a whole sub-aggregator group of K
// virtual clients, so a fleet of N clients needs only ⌈N/K⌉ processes and
// sockets. Each round the coordinator ships one MsgBatchStart per non-empty
// group — the tasked members with their Lemma-1 scales and authoritative
// cursors — and receives one MsgPartial carrying the group's fixed-point
// fold, so coordinator ingress is O(groups·model) instead of
// O(participants·model). Group nodes keep no per-client state between
// rounds: the cursor table round-trips through every batch, which makes
// revival, resume, and membership churn pure coordinator-side bookkeeping.
type ClusterBackend struct {
	opts ClusterOptions

	spec     *Spec
	runCtx   context.Context
	listener net.Listener
	// groupSize > 1 switches the backend into multiplexed group mode: slots,
	// node goroutines, and nodeErrs are then indexed by group, not client.
	groupSize int

	mu       sync.Mutex
	slots    []clusterSlot
	cursors  []ClientCursor // authoritative per-client executor cursors
	resume   []ClientCursor // staged by RestoreClientCursors before Open
	conns    []net.Conn     // every conn ever accepted, for teardown sweeps
	active   []bool         // current roster (all true without a membership plan)
	retired  []bool         // clients that permanently left (never respawned, never re-admitted)
	closed   bool
	booting  bool
	ready    int // number of currently ready slots
	bootErr  error
	cond     *sync.Cond
	misses   []int // rounds forfeited per client (healing mode)
	respawns []int // revivals per client (healing mode)
	// unitRespawns tracks the revival budget per group node in group mode
	// (respawns above stays per client for Health, mirrored group-wide).
	unitRespawns []int

	nodeWG   sync.WaitGroup
	acceptWG sync.WaitGroup
	nodeErrs []error

	watchDone chan struct{}

	// Per-round buffers, reused across dispatches.
	updates []ClientUpdate
	errs    []error
	staged  []transport.Cursor
	// Group-mode per-round buffers: the group partition, one error and codec
	// slot per group, and the batch-building scratch reused across sequential
	// sends.
	groups   []taskGroup
	gerrs    []error
	gcodecs  []*transport.Codec
	bClients []int
	bScales  []float64
	bCursors []transport.Cursor
}

// NewClusterBackend constructs an unopened cluster backend.
func NewClusterBackend(opts ClusterOptions) *ClusterBackend {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = transport.DefaultHandshakeTimeout
	}
	if opts.Retry.Attempts < 1 {
		opts.Retry = DefaultNodeRetry
	}
	if opts.MaxRespawns <= 0 {
		opts.MaxRespawns = DefaultMaxRespawns
	}
	b := &ClusterBackend{opts: opts}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// RestoreClientCursors implements StatefulBackend: Open will position every
// node's executor at the given cursor (delivered inside its welcome).
func (b *ClusterBackend) RestoreClientCursors(cursors []ClientCursor) error {
	if b.spec != nil {
		return errors.New("engine: restore on an open backend")
	}
	b.resume = append([]ClientCursor(nil), cursors...)
	return nil
}

// ClientCursors implements StatefulBackend. Only valid between Dispatch
// calls — exactly when the orchestrator commits a round boundary.
func (b *ClusterBackend) ClientCursors(dst []ClientCursor) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.spec == nil {
		return errors.New("engine: cluster backend not open")
	}
	if len(dst) != len(b.cursors) {
		return fmt.Errorf("engine: cursor buffer of %d for a %d-client fleet", len(dst), len(b.cursors))
	}
	copy(dst, b.cursors)
	return nil
}

// ClusterHealth reports the degradation bookkeeping of a self-healing run.
type ClusterHealth struct {
	// Misses[n] counts rounds client n forfeited (crash, disconnect, or
	// deadline miss).
	Misses []int
	// Respawns[n] counts how many times client n's node was revived.
	Respawns []int
}

// Health returns a copy of the degradation counters. Valid any time after
// Open, including after Close.
func (b *ClusterBackend) Health() ClusterHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	return ClusterHealth{
		Misses:   append([]int(nil), b.misses...),
		Respawns: append([]int(nil), b.respawns...),
	}
}

// Open implements ExecutionBackend: it binds the coordinator's listener,
// starts the persistent accept loop, boots one node goroutine per client,
// and waits until the whole fleet has registered.
func (b *ClusterBackend) Open(ctx context.Context, spec *Spec) error {
	if b.spec != nil {
		return errors.New("engine: cluster backend already open")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	nClients := spec.Fed.NumClients()
	if b.resume != nil && len(b.resume) != nClients {
		return fmt.Errorf("engine: %d resume cursors for a %d-client fleet", len(b.resume), nClients)
	}
	ln, err := net.Listen("tcp", b.opts.Addr)
	if err != nil {
		return fmt.Errorf("engine: cluster listen: %w", err)
	}
	b.spec = spec
	b.runCtx = ctx
	b.listener = ln
	b.groupSize = 0
	units := nClients
	if spec.GroupSize > 1 {
		b.groupSize = spec.GroupSize
		units = (nClients + b.groupSize - 1) / b.groupSize
	}
	b.slots = make([]clusterSlot, units)
	b.nodeErrs = make([]error, units)
	b.unitRespawns = make([]int, units)
	b.misses = make([]int, nClients)
	b.respawns = make([]int, nClients)
	b.closed = false
	b.booting = true
	b.bootErr = nil
	b.ready = 0
	if b.resume != nil {
		b.cursors = append([]ClientCursor(nil), b.resume...)
	} else {
		b.cursors = initialCursors(spec.Seed, nClients)
	}

	// Membership: only the roster in effect at the starting boundary boots
	// now. Future joiners dial in immediately anyway — their MsgJoin parks
	// at the coordinator until their epoch — and clients that already left
	// (a resume past their departure) are retired outright. A failover
	// coordinator attaching to a checkpoint therefore re-welcomes exactly
	// the surviving fleet.
	startRound := 0
	if spec.Resume != nil {
		startRound = spec.Resume.NextRound
	}
	b.active = spec.Membership.ActiveAt(startRound, nClients)
	b.retired = make([]bool, nClients)
	if plan := spec.Membership; plan != nil {
		for i := range plan.Events {
			if plan.Events[i].Round >= startRound {
				break
			}
			for _, n := range plan.Events[i].Leave {
				b.retired[n] = true
			}
		}
	}
	activeCount := 0
	for _, a := range b.active {
		if a {
			activeCount++
		}
	}
	if b.groupSize > 1 {
		// Group mode: every group node boots regardless of the roster — a
		// socket hosts active and inactive members alike, and membership is
		// pure coordinator-side task filtering (see ApplyEpoch).
		activeCount = units
	}

	// On cancellation, close the listener and every connection: reads fail
	// immediately and stay failed, which the dispatch path, the accept loop,
	// and the node loops all translate into a prompt unwind. The broadcast
	// wakes Open's boot wait.
	if ctx.Done() != nil {
		b.watchDone = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				b.closeConns()
				b.mu.Lock()
				b.cond.Broadcast()
				b.mu.Unlock()
			case <-b.watchDone:
			}
		}()
	}

	b.acceptWG.Add(1)
	go b.acceptLoop()
	if b.groupSize > 1 {
		for g := 0; g < units; g++ {
			b.spawnNode(g, false)
		}
	} else {
		for n := 0; n < nClients; n++ {
			if b.active[n] {
				b.spawnNode(n, false)
			}
		}
		for _, n := range spec.Membership.joinsAfter(startRound) {
			b.spawnNode(n, true)
		}
	}

	// Wait until the starting roster has registered (parked joiners are not
	// waited on — they are admitted at their epoch), a node died on boot, or
	// the context went away.
	b.mu.Lock()
	for b.ready < activeCount && b.bootErr == nil && ctx.Err() == nil {
		b.cond.Wait()
	}
	bootErr := b.bootErr
	b.booting = false
	b.mu.Unlock()

	if err := ctx.Err(); err != nil {
		b.teardown()
		return err
	}
	if bootErr != nil {
		b.teardown()
		return ctxErrOr(ctx, fmt.Errorf("engine: cluster boot: %w", bootErr))
	}
	return nil
}

// spawnNode launches (or revives) the node goroutine for client n with its
// own cancel handle. join selects the prospective-member handshake (MsgJoin,
// parked until the client's epoch) over the member hello. Callers must not
// hold b.mu.
func (b *ClusterBackend) spawnNode(n int, join bool) {
	nodeCtx, cancel := context.WithCancel(b.runCtx)
	b.mu.Lock()
	b.slots[n].cancel = cancel
	b.slots[n].gen++
	gen := b.slots[n].gen
	b.mu.Unlock()
	b.nodeWG.Add(1)
	go func() {
		defer b.nodeWG.Done()
		err := b.runNode(nodeCtx, n, join)
		b.mu.Lock()
		if b.slots[n].gen == gen {
			b.slots[n].pending = false
		}
		if err != nil {
			b.nodeErrs[n] = err
			if b.booting && b.bootErr == nil {
				b.bootErr = fmt.Errorf("node %d: %w", n, err)
			}
			b.cond.Broadcast()
		}
		b.mu.Unlock()
	}()
}

// acceptLoop accepts and registers node connections for the lifetime of the
// backend — at boot and whenever a healing cluster revives a node. It exits
// when the listener closes.
func (b *ClusterBackend) acceptLoop() {
	defer b.acceptWG.Done()
	for {
		conn, err := b.listener.Accept()
		if err != nil {
			// Listener closed: teardown, or the ctx watcher. Wake the boot
			// wait so Open re-checks its exit conditions.
			b.mu.Lock()
			if b.booting && b.bootErr == nil && b.runCtx.Err() == nil && !b.closed {
				b.bootErr = fmt.Errorf("accept: %w", err)
			}
			b.cond.Broadcast()
			b.mu.Unlock()
			return
		}
		if err := b.register(conn); err != nil {
			_ = conn.Close()
			b.mu.Lock()
			if b.booting && b.bootErr == nil {
				b.bootErr = err
			}
			b.cond.Broadcast()
			b.mu.Unlock()
		}
	}
}

// register runs the handshake/hello/welcome exchange for one accepted
// connection and marks the slot ready. The welcome carries the
// coordinator's authoritative cursor for the client, which is what makes a
// reviving node (and a resumed run) continue the exact stream the fleet
// would have produced uninterrupted.
//
// Members open with MsgHello; prospective members open with MsgJoin. A join
// from a client whose epoch has not arrived yet is parked — the welcome is
// withheld until ApplyEpoch admits it at the boundary. A join from an
// already-active client (the coordinator re-spawning a joiner) is welcomed
// immediately, and a retired client is refused outright: leaves are
// permanent.
func (b *ClusterBackend) register(conn net.Conn) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("engine: backend closed")
	}
	b.conns = append(b.conns, conn)
	closing := b.runCtx.Err() != nil
	b.mu.Unlock()
	if closing {
		return b.runCtx.Err()
	}

	hsDeadline := time.Now().Add(b.opts.HandshakeTimeout)
	_ = conn.SetDeadline(hsDeadline)
	if err := transport.Handshake(conn); err != nil {
		return err
	}
	codec, err := transport.NewCodec(conn, b.opts.Timeout)
	if err != nil {
		return err
	}
	hello, err := codec.RecvDeadline(hsDeadline)
	if err != nil {
		return fmt.Errorf("engine: cluster hello: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})

	b.mu.Lock()
	id := hello.ClientID
	if b.groupSize > 1 {
		// Group mode: a multiplexed node announces the group it hosts. The
		// welcome carries only the run configuration — never a cursor — because
		// group nodes are stateless between rounds: every batch delivers the
		// authoritative cursors of exactly the members it tasks.
		valid := hello.Type == transport.MsgGroupHello && id >= 0 && id < len(b.slots) && !b.slots[id].ready
		b.mu.Unlock()
		if !valid {
			return fmt.Errorf("engine: cluster got invalid group hello (type %v, id %d)", hello.Type, hello.ClientID)
		}
		spec := b.spec
		if err := codec.Send(&transport.Message{
			Type:        transport.MsgWelcome,
			ClientID:    id,
			Q:           1,
			Coordinated: true,
			LocalSteps:  spec.LocalSteps,
			BatchSize:   spec.BatchSize,
			Rounds:      spec.Rounds,
		}); err != nil {
			return err
		}
		b.mu.Lock()
		slot := &b.slots[id]
		slot.codec = codec
		slot.conn = conn
		slot.ready = true
		slot.pending = false
		b.ready++
		b.cond.Broadcast()
		b.mu.Unlock()
		return nil
	}
	valid := (hello.Type == transport.MsgHello || hello.Type == transport.MsgJoin) &&
		id >= 0 && id < len(b.slots) && !b.slots[id].ready && !b.retired[id]
	if valid && hello.Type == transport.MsgHello && !b.active[id] {
		valid = false // members say hello; prospects must ask to join
	}
	if !valid {
		b.mu.Unlock()
		return fmt.Errorf("engine: cluster got invalid hello (type %v, id %d)", hello.Type, hello.ClientID)
	}
	if hello.Type == transport.MsgJoin && !b.active[id] {
		if b.slots[id].parked != nil {
			b.mu.Unlock()
			return fmt.Errorf("engine: duplicate join from client %d", id)
		}
		b.slots[id].parked = codec
		b.slots[id].parkConn = conn
		b.cond.Broadcast()
		b.mu.Unlock()
		return nil
	}
	cursor := b.cursors[id]
	b.mu.Unlock()

	spec := b.spec
	if err := codec.Send(&transport.Message{
		Type:        transport.MsgWelcome,
		ClientID:    id,
		Q:           1, // participation is decided centrally
		Coordinated: true,
		LocalSteps:  spec.LocalSteps,
		BatchSize:   spec.BatchSize,
		Rounds:      spec.Rounds,
		Cursor: &transport.Cursor{
			RNG: cursor.RNG, SqCount: cursor.SqCount,
			SqMean: cursor.SqMean, SqM2: cursor.SqM2,
		},
	}); err != nil {
		return err
	}

	b.mu.Lock()
	slot := &b.slots[id]
	slot.codec = codec
	slot.conn = conn
	slot.ready = true
	slot.pending = false
	b.ready++
	b.cond.Broadcast()
	b.mu.Unlock()
	return nil
}

// Dispatch implements ExecutionBackend: it ships each task's round start to
// its node concurrently, collects the replies, and fills updates in task
// order so aggregation matches the local backend exactly.
//
// In strict mode (no RoundTimeout) any node failure fails the round. In
// self-healing mode the round runs under a deadline; tasks whose node
// crashed, disconnected, or missed the deadline are dropped from the
// returned updates (the orchestrator records those clients as absent — the
// unbiased estimator already prices unavailability), their connections are
// severed, and revival dialers start in the background.
func (b *ClusterBackend) Dispatch(
	ctx context.Context, round int, global tensor.Vec, tasks []ClientTask,
) ([]ClientUpdate, error) {
	if b.spec == nil {
		return nil, errors.New("engine: cluster backend not open")
	}
	if b.groupSize > 1 {
		return nil, errors.New("engine: cluster backend is in group mode; rounds dispatch through DispatchPartials")
	}
	if cap(b.updates) < len(tasks) {
		b.updates = make([]ClientUpdate, len(tasks))
		b.errs = make([]error, len(tasks))
		b.staged = make([]transport.Cursor, len(tasks))
	}
	updates := b.updates[:len(tasks)]
	errs := b.errs[:len(tasks)]
	staged := b.staged[:len(tasks)]
	healing := b.opts.healing()
	var deadline time.Time
	if healing {
		deadline = time.Now().Add(b.opts.RoundTimeout)
	}

	var wg sync.WaitGroup
	for i, task := range tasks {
		i, task := i, task
		errs[i] = nil
		staged[i] = transport.Cursor{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.mu.Lock()
			codec, up := b.slots[task.Client].codec, b.slots[task.Client].ready
			b.mu.Unlock()
			if !up {
				errs[i] = fmt.Errorf("node %d: %w", task.Client, errNodeDown)
				return
			}
			if err := codec.Send(&transport.Message{
				Type: transport.MsgRoundStart, Round: round, Model: global, LR: task.LR,
			}); err != nil {
				errs[i] = fmt.Errorf("node %d: %w", task.Client, err)
				return
			}
			var reply *transport.Message
			var err error
			if healing {
				reply, err = codec.RecvDeadline(deadline)
			} else {
				reply, err = codec.Recv()
			}
			if err != nil {
				errs[i] = fmt.Errorf("node %d: %w", task.Client, err)
				return
			}
			if reply.Type != transport.MsgUpdate || reply.ClientID != task.Client || reply.Round != round {
				errs[i] = fmt.Errorf("node %d: unexpected reply (type %v, id %d, round %d)",
					task.Client, reply.Type, reply.ClientID, reply.Round)
				return
			}
			updates[i] = ClientUpdate{
				Client:     task.Client,
				Delta:      tensor.Vec(reply.Model),
				GradSqNorm: reply.GradSqNorm,
			}
			if reply.Cursor != nil {
				staged[i] = *reply.Cursor
			} else {
				errs[i] = fmt.Errorf("node %d: update missing cursor", task.Client)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !healing {
		for _, err := range errs {
			if err != nil {
				return nil, ctxErrOr(ctx, err)
			}
		}
		b.commitCursors(tasks, errs, staged)
		return updates, nil
	}

	// Self-healing: commit the cursors of the survivors, compact their
	// updates into task order, and fail out everyone else.
	b.commitCursors(tasks, errs, staged)
	k := 0
	for i := range tasks {
		if errs[i] == nil {
			updates[k] = updates[i]
			k++
			continue
		}
		b.failClient(tasks[i].Client, errs[i])
	}
	return updates[:k], nil
}

// commitCursors folds the round's successfully reported node cursors into
// the coordinator's authoritative table.
func (b *ClusterBackend) commitCursors(tasks []ClientTask, errs []error, staged []transport.Cursor) {
	b.mu.Lock()
	for i := range tasks {
		if errs[i] != nil {
			continue
		}
		c := staged[i]
		b.cursors[tasks[i].Client] = ClientCursor{
			RNG: c.RNG, SqCount: c.SqCount, SqMean: c.SqMean, SqM2: c.SqM2,
		}
	}
	b.mu.Unlock()
}

// failClient records a forfeited round for the client, severs whatever is
// left of its connection (waking both the dead node goroutine and any
// half-open peer), and — within the respawn budget — starts a background
// revival dialer. Runs on the orchestration goroutine, after the round's
// dispatch barrier.
func (b *ClusterBackend) failClient(client int, cause error) {
	b.mu.Lock()
	b.misses[client]++
	slot := &b.slots[client]
	// An errNodeDown miss means the slot was already down when the round
	// dispatched; if a revival registered mid-round, that fresh connection
	// is healthy — severing it would churn the node for nothing.
	if slot.ready && !errors.Is(cause, errNodeDown) {
		slot.ready = false
		b.ready--
		if slot.cancel != nil {
			slot.cancel()
		}
		if slot.conn != nil {
			_ = slot.conn.Close()
		}
		slot.codec = nil
		slot.conn = nil
	}
	respawn := !b.closed && !slot.ready && !slot.pending && !b.retired[client] &&
		b.runCtx.Err() == nil && b.respawns[client] < b.opts.MaxRespawns
	if respawn {
		slot.pending = true
		b.respawns[client]++
	}
	b.mu.Unlock()
	if respawn {
		b.spawnNode(client, false)
	}
}

// DispatchPartials implements PartialBackend (group mode, protocol v5): one
// MsgBatchStart per non-empty group ships the tasked members with their
// Lemma-1 scales and authoritative cursors, then a worker pool sized to
// GOMAXPROCS drains the MsgPartial replies — so a 10^5-client round runs
// over ⌈fleet/K⌉ sockets with coordinator ingress of O(groups·model) and at
// most O(workers·model) reply buffers in flight.
//
// Failure semantics mirror flat dispatch, at group granularity: in strict
// mode any group failure fails the round; in self-healing mode a group that
// crashes, disconnects, or misses the deadline forfeits the round for every
// member it was tasked with, and its node is revived in the background
// within the respawn budget.
func (b *ClusterBackend) DispatchPartials(
	ctx context.Context, round int, global tensor.Vec, tasks []ClientTask,
	groupSize int, sink func(Partial) error,
) error {
	if b.spec == nil {
		return errors.New("engine: cluster backend not open")
	}
	if b.groupSize <= 1 {
		return errors.New("engine: cluster backend was opened flat; hierarchical dispatch needs Spec.GroupSize > 1 at Open")
	}
	if groupSize != b.groupSize {
		return fmt.Errorf("engine: dispatch group size %d does not match the fleet's %d", groupSize, b.groupSize)
	}
	b.groups = splitGroups(b.groups[:0], tasks, groupSize)
	if cap(b.gerrs) < len(b.groups) {
		b.gerrs = make([]error, len(b.groups))
		b.gcodecs = make([]*transport.Codec, len(b.groups))
	}
	gerrs := b.gerrs[:len(b.groups)]
	gcodecs := b.gcodecs[:len(b.groups)]
	healing := b.opts.healing()
	var deadline time.Time
	if healing {
		deadline = time.Now().Add(b.opts.RoundTimeout)
	}

	// Phase 1 — sequential sends. One scratch set builds each batch in turn;
	// the codec is captured per group so a mid-round revival can never hand a
	// fresh connection to a round already in flight.
	for gi := range b.groups {
		g := b.groups[gi]
		gerrs[gi] = nil
		gcodecs[gi] = nil
		b.mu.Lock()
		codec, up := b.slots[g.id].codec, b.slots[g.id].ready
		b.bClients = b.bClients[:0]
		b.bScales = b.bScales[:0]
		b.bCursors = b.bCursors[:0]
		for _, t := range tasks[g.lo:g.hi] {
			c := b.cursors[t.Client]
			b.bClients = append(b.bClients, t.Client)
			b.bScales = append(b.bScales, t.Scale)
			b.bCursors = append(b.bCursors, transport.Cursor{
				RNG: c.RNG, SqCount: c.SqCount, SqMean: c.SqMean, SqM2: c.SqM2,
			})
		}
		b.mu.Unlock()
		if !up {
			gerrs[gi] = fmt.Errorf("group node %d: %w", g.id, errNodeDown)
			continue
		}
		if err := codec.Send(&transport.Message{
			Type: transport.MsgBatchStart, ClientID: g.id, Round: round,
			Model: global, LR: tasks[g.lo].LR,
			Clients: b.bClients, Scales: b.bScales, Cursors: b.bCursors,
		}); err != nil {
			gerrs[gi] = fmt.Errorf("group node %d: %w", g.id, err)
			continue
		}
		gcodecs[gi] = codec
	}

	// Phase 2 — bounded reply drain. Workers own disjoint static stripes of
	// the group list, so each codec's receive direction has exactly one user.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(b.groups) {
		workers = len(b.groups)
	}
	if workers < 1 {
		workers = 1
	}
	nClients := len(b.cursors)
	var sinkMu sync.Mutex
	var sinkErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := w; gi < len(b.groups); gi += workers {
				if gerrs[gi] != nil {
					continue
				}
				g := b.groups[gi]
				codec := gcodecs[gi]
				var reply *transport.Message
				var err error
				if healing {
					reply, err = codec.RecvDeadline(deadline)
				} else {
					reply, err = codec.Recv()
				}
				if err != nil {
					// A socket error here usually means the node process died;
					// its own exit error is the diagnosable one, so fold it in
					// when it has already been recorded.
					b.mu.Lock()
					nodeErr := b.nodeErrs[g.id]
					b.mu.Unlock()
					if nodeErr != nil {
						err = fmt.Errorf("%w (node exit: %v)", err, nodeErr)
					}
					gerrs[gi] = fmt.Errorf("group node %d: %w", g.id, err)
					continue
				}
				if err := checkPartial(reply, g, len(global), nClients, round); err != nil {
					gerrs[gi] = err
					continue
				}
				// Commit the batch members' post-update cursors, keyed by the
				// dispatched tasks: tampering may relabel an update's client,
				// never its executor.
				b.mu.Lock()
				for i, t := range tasks[g.lo:g.hi] {
					c := reply.Cursors[i]
					b.cursors[t.Client] = ClientCursor{
						RNG: c.RNG, SqCount: c.SqCount, SqMean: c.SqMean, SqM2: c.SqM2,
					}
				}
				b.mu.Unlock()
				sinkMu.Lock()
				if sinkErr == nil {
					sinkErr = sink(Partial{
						Group: g.id, Clients: reply.Clients,
						Lo: reply.Lo, Hi: reply.Hi, Sat: reply.Sat, GradSq: reply.GradSqs,
					})
				}
				sinkMu.Unlock()
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	if !healing {
		for _, err := range gerrs {
			if err != nil {
				return ctxErrOr(ctx, err)
			}
		}
		return sinkErr
	}
	for gi, err := range gerrs {
		if err != nil {
			g := b.groups[gi]
			b.failGroup(g.id, tasks[g.lo:g.hi], err)
		}
	}
	return sinkErr
}

// checkPartial validates one group's reply against the batch it was sent.
func checkPartial(reply *transport.Message, g taskGroup, p, nClients, round int) error {
	batch := g.hi - g.lo
	switch {
	case reply.Type != transport.MsgPartial || reply.ClientID != g.id || reply.Round != round:
		return fmt.Errorf("group node %d: unexpected reply (type %v, id %d, round %d)",
			g.id, reply.Type, reply.ClientID, reply.Round)
	case len(reply.Lo) != p || len(reply.Hi) != p:
		return fmt.Errorf("group node %d: partial limbs %d/%d, want %d", g.id, len(reply.Lo), len(reply.Hi), p)
	case len(reply.Clients) != batch || len(reply.GradSqs) != batch || len(reply.Cursors) != batch:
		return fmt.Errorf("group node %d: partial covers %d/%d/%d entries, batch had %d",
			g.id, len(reply.Clients), len(reply.GradSqs), len(reply.Cursors), batch)
	}
	for _, n := range reply.Clients {
		if n < 0 || n >= nClients {
			return fmt.Errorf("group node %d: partial names unknown client %d", g.id, n)
		}
	}
	return nil
}

// failGroup is failClient at group granularity: every tasked member is
// ledgered as a miss, the group node's connection is severed, and — within
// the group's respawn budget — a background revival dialer starts. The
// per-client Respawns counters mirror the group's count for every member,
// since one process hosts them all.
func (b *ClusterBackend) failGroup(gid int, tasked []ClientTask, cause error) {
	b.mu.Lock()
	for _, t := range tasked {
		b.misses[t.Client]++
	}
	slot := &b.slots[gid]
	if slot.ready && !errors.Is(cause, errNodeDown) {
		slot.ready = false
		b.ready--
		if slot.cancel != nil {
			slot.cancel()
		}
		if slot.conn != nil {
			_ = slot.conn.Close()
		}
		slot.codec = nil
		slot.conn = nil
	}
	respawn := !b.closed && !slot.ready && !slot.pending &&
		b.runCtx.Err() == nil && b.unitRespawns[gid] < b.opts.MaxRespawns
	if respawn {
		slot.pending = true
		b.unitRespawns[gid]++
		lo := gid * b.groupSize
		hi := lo + b.groupSize
		if n := len(b.respawns); hi > n {
			hi = n
		}
		for n := lo; n < hi; n++ {
			b.respawns[n]++
		}
	}
	b.mu.Unlock()
	if respawn {
		b.spawnNode(gid, false)
	}
}

// Sockets reports how many node connections are currently registered — in
// group mode at most ⌈fleet/GroupSize⌉, the multiplexing bound the fleet
// benchmarks assert.
func (b *ClusterBackend) Sockets() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ready
}

// ApplyEpoch implements EpochBackend: at a membership boundary the
// coordinator admits the epoch's joiners — welcoming their parked MsgJoin
// handshakes with the authoritative cursor, or waiting out a dial still in
// flight — and gracefully retires its leavers (MsgLeave, MsgBye, close).
// It runs on the orchestration goroutine between rounds, so no dispatch is
// in flight on any touched connection.
func (b *ClusterBackend) ApplyEpoch(ctx context.Context, r Roster) error {
	if b.spec == nil {
		return errors.New("engine: cluster backend not open")
	}
	if b.groupSize > 1 {
		// Group mode: a socket hosts its whole group, active members or not,
		// so roster churn is pure coordinator-side bookkeeping — joiners start
		// being tasked, leavers stop, and no connection moves.
		b.mu.Lock()
		for _, n := range r.Joined {
			b.active[n] = true
		}
		for _, n := range r.Left {
			b.active[n] = false
			b.retired[n] = true
		}
		b.mu.Unlock()
		return nil
	}
	for _, n := range r.Joined {
		if err := b.admit(ctx, n); err != nil {
			return err
		}
	}
	for _, n := range r.Left {
		if err := b.retire(ctx, n); err != nil {
			return err
		}
	}
	return nil
}

// admit activates client n and completes its join: the parked handshake is
// welcomed at the coordinator's cursor, or — if the prospective node's
// dialer died before its epoch — one fresh node is spawned and waited for.
// Joining is a deliberate scheduled event, not a tolerable fault, so a
// failed admission fails the run even in self-healing mode.
func (b *ClusterBackend) admit(ctx context.Context, n int) error {
	b.mu.Lock()
	b.active[n] = true
	slot := &b.slots[n]
	respawned := false
	for !slot.ready && slot.parked == nil {
		if err := ctx.Err(); err != nil {
			b.mu.Unlock()
			return err
		}
		if err := b.nodeErrs[n]; err != nil {
			if respawned {
				b.mu.Unlock()
				return fmt.Errorf("engine: admit node %d: %w", n, err)
			}
			respawned = true
			b.nodeErrs[n] = nil
			b.mu.Unlock()
			b.spawnNode(n, true)
			b.mu.Lock()
			continue
		}
		b.cond.Wait()
	}
	if slot.ready {
		// The join registered through the accept path after activation.
		b.mu.Unlock()
		return nil
	}
	codec, conn := slot.parked, slot.parkConn
	slot.parked, slot.parkConn = nil, nil
	cursor := b.cursors[n]
	spec := b.spec
	b.mu.Unlock()

	if err := codec.Send(&transport.Message{
		Type:        transport.MsgWelcome,
		ClientID:    n,
		Q:           1,
		Coordinated: true,
		LocalSteps:  spec.LocalSteps,
		BatchSize:   spec.BatchSize,
		Rounds:      spec.Rounds,
		Cursor: &transport.Cursor{
			RNG: cursor.RNG, SqCount: cursor.SqCount,
			SqMean: cursor.SqMean, SqM2: cursor.SqM2,
		},
	}); err != nil {
		_ = conn.Close()
		return ctxErrOr(ctx, fmt.Errorf("engine: welcome joining node %d: %w", n, err))
	}
	b.mu.Lock()
	slot.codec = codec
	slot.conn = conn
	slot.ready = true
	slot.pending = false
	b.ready++
	b.cond.Broadcast()
	b.mu.Unlock()
	return nil
}

// retire permanently removes client n: a live node gets the graceful
// MsgLeave → MsgBye farewell before its socket closes; a currently-down
// node (healing mode) is simply marked retired so no revival dialer ever
// brings it back. In self-healing mode a farewell that fails is tolerated —
// the node is gone either way and the slot is already retired.
func (b *ClusterBackend) retire(ctx context.Context, n int) error {
	b.mu.Lock()
	b.active[n] = false
	b.retired[n] = true
	slot := &b.slots[n]
	up := slot.ready
	codec := slot.codec
	if !up && slot.cancel != nil {
		slot.cancel() // kill any revival dialer; the slot is retired
	}
	b.mu.Unlock()
	if !up {
		return nil
	}

	err := codec.Send(&transport.Message{Type: transport.MsgLeave})
	if err == nil {
		var bye *transport.Message
		bye, err = codec.RecvDeadline(time.Now().Add(b.opts.Timeout))
		if err == nil && (bye.Type != transport.MsgBye || bye.ClientID != n) {
			err = fmt.Errorf("expected bye, got type %v id %d", bye.Type, bye.ClientID)
		}
	}
	b.mu.Lock()
	if slot.ready {
		slot.ready = false
		b.ready--
	}
	if slot.conn != nil {
		_ = slot.conn.Close()
	}
	slot.codec, slot.conn = nil, nil
	b.mu.Unlock()
	if err != nil && !b.opts.healing() {
		return ctxErrOr(ctx, fmt.Errorf("engine: retire node %d: %w", n, err))
	}
	return nil
}

// Close implements ExecutionBackend: it ends the session (MsgDone to every
// live node), waits for the fleet to exit, and tears down every socket. In
// strict mode any node that died for a reason other than the shutdown
// itself surfaces here; in self-healing mode node deaths were part of the
// round protocol (each one is already ledgered as a miss, see Health) and
// teardown is silent.
func (b *ClusterBackend) Close() error {
	if b.spec == nil {
		return nil
	}
	b.mu.Lock()
	b.closed = true
	codecs := make([]*transport.Codec, 0, len(b.slots))
	for i := range b.slots {
		if b.slots[i].ready {
			codecs = append(codecs, b.slots[i].codec)
		}
	}
	b.mu.Unlock()
	for _, codec := range codecs {
		_ = codec.Send(&transport.Message{Type: transport.MsgDone})
	}
	b.teardown()
	if b.opts.healing() {
		return nil
	}
	label := "cluster node"
	if b.groupSize > 1 {
		label = "cluster group node"
	}
	var errs []error
	for n, err := range b.nodeErrs {
		if err != nil {
			errs = append(errs, fmt.Errorf("engine: %s %d: %w", label, n, err))
		}
	}
	return errors.Join(errs...)
}

// teardown closes every socket, cancels every node, stops the watcher, and
// waits for the accept loop and node goroutines. Safe to call more than
// once.
func (b *ClusterBackend) teardown() {
	b.mu.Lock()
	b.closed = true
	for i := range b.slots {
		// Cancel only dead slots (their revival dialers would otherwise sit
		// out a backoff against a closed listener). Live nodes must NOT have
		// their sockets slammed from their own side: closing the
		// coordinator-side conn sends an orderly FIN, so a node still drains
		// a buffered MsgDone before seeing EOF.
		if !b.slots[i].ready && b.slots[i].cancel != nil {
			b.slots[i].cancel()
		}
	}
	b.mu.Unlock()
	b.closeConns()
	b.acceptWG.Wait()
	b.nodeWG.Wait()
	if b.watchDone != nil {
		close(b.watchDone)
		b.watchDone = nil
	}
	b.spec = nil
}

func (b *ClusterBackend) closeConns() {
	if b.listener != nil {
		_ = b.listener.Close()
	}
	b.mu.Lock()
	for _, c := range b.conns {
		_ = c.Close()
	}
	b.mu.Unlock()
}

// runNode is one device of the cluster: it dials the coordinator (with
// retry — a reviving node may race the coordinator severing its old conn),
// completes the handshake, restores its executor from the cursor in the
// welcome, and serves coordinated round starts until MsgDone (session over)
// or MsgLeave (graceful retirement, acknowledged with MsgBye). ctx is the
// node's private context: severed by failClient, teardown, or the run
// context going away. With join set the node is a prospective member: it
// opens with MsgJoin and waits — unbounded, its epoch may be rounds away —
// for the coordinator to admit it with a welcome.
func (b *ClusterBackend) runNode(ctx context.Context, n int, join bool) error {
	if b.groupSize > 1 {
		return b.runGroupNode(ctx, n)
	}
	spec := b.spec
	// Deterministic backoff jitter, salted per client and decoupled from
	// every model-visible stream.
	jitter := stats.NewRNG(spec.Seed ^ (0x9E3779B97F4A7C15 * uint64(n+1)))
	conn, err := transport.DialRetry(ctx, b.listener.Addr().String(), b.opts.Retry, jitter)
	if err != nil {
		return ctxErrOr(ctx, err)
	}
	// The node's reads are unbounded by design — an unselected node simply
	// waits for its next invitation — so shutdown runs through connection
	// closes: the coordinator's teardown (or the ctx watcher) severs the
	// socket and the pending read fails immediately.
	defer func() { _ = conn.Close() }()
	stop := transportWatch(ctx, conn)
	defer stop()
	codec, err := transport.NewCodec(conn, 0)
	if err != nil {
		return err
	}
	hsDeadline := time.Now().Add(b.opts.HandshakeTimeout)
	helloType := transport.MsgHello
	if join {
		helloType = transport.MsgJoin
	}
	if err := codec.Send(&transport.Message{Type: helloType, ClientID: n}); err != nil {
		return ctxErrOr(ctx, err)
	}
	var welcome *transport.Message
	if join {
		welcome, err = codec.Recv()
	} else {
		welcome, err = codec.RecvDeadline(hsDeadline)
	}
	if err != nil {
		return ctxErrOr(ctx, err)
	}
	if welcome.Type != transport.MsgWelcome || !welcome.Coordinated {
		return fmt.Errorf("expected coordinated welcome, got %v", welcome.Type)
	}
	if welcome.Cursor == nil {
		return errors.New("welcome missing executor cursor")
	}
	st, err := newClientExecAt(ClientCursor{
		RNG: welcome.Cursor.RNG, SqCount: welcome.Cursor.SqCount,
		SqMean: welcome.Cursor.SqMean, SqM2: welcome.Cursor.SqM2,
	})
	if err != nil {
		return err
	}

	var (
		arena execArena
		delta tensor.Vec
	)
	var delay time.Duration
	if b.opts.NodeDelay != nil {
		delay = b.opts.NodeDelay(n)
	}
	for {
		msg, err := codec.Recv()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			// A severed socket after Close started is the normal end of an
			// errored run; report it so Close can surface real failures.
			return err
		}
		switch msg.Type {
		case transport.MsgDone:
			return nil
		case transport.MsgLeave:
			// Graceful retirement at an epoch boundary: acknowledge and go.
			if err := codec.Send(&transport.Message{Type: transport.MsgBye, ClientID: n}); err != nil {
				return ctxErrOr(ctx, err)
			}
			return nil
		case transport.MsgRoundStart:
			var fault transport.RoundFault
			if b.opts.NodeFault != nil {
				fault = b.opts.NodeFault(n, msg.Round)
			}
			if fault.Crash {
				return transport.ErrInjectedCrash
			}
			if stall := delay + fault.Delay; stall > 0 {
				timer := time.NewTimer(stall)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return ctx.Err()
				}
			}
			if len(delta) != len(msg.Model) {
				delta = tensor.NewVec(len(msg.Model))
			}
			if err := st.localUpdate(
				ctx, spec.Model, spec.Fed.Clients[n], n,
				tensor.Vec(msg.Model), spec.LocalSteps, spec.BatchSize, msg.LR,
				&arena, delta,
			); err != nil {
				return err
			}
			cursor := st.cursor()
			if err := codec.Send(&transport.Message{
				Type: transport.MsgUpdate, ClientID: n, Round: msg.Round,
				Model: delta, GradSqNorm: st.sqNorms.Mean(),
				Cursor: &transport.Cursor{
					RNG: cursor.RNG, SqCount: cursor.SqCount,
					SqMean: cursor.SqMean, SqM2: cursor.SqM2,
				},
			}); err != nil {
				return ctxErrOr(ctx, err)
			}
		default:
			return fmt.Errorf("unexpected message %v", msg.Type)
		}
	}
}

// runGroupNode is one multiplexed device of the cluster: a single process
// and socket hosting a whole sub-aggregator group of virtual clients. It
// announces its group with MsgGroupHello, and then serves MsgBatchStart
// messages: for each tasked member it restores an executor from the cursor
// the batch carries, runs the local update in the node's one scratch arena,
// folds the weighted delta into the node's fixed-point accumulator, and
// ships back a single MsgPartial — O(model) per node, no per-client state
// retained between rounds. Fault injection is consulted per member: any
// member's crash kills the node (the whole group forfeits the round — the
// multiplexing trade-off), and stalls take the slowest member's delay.
func (b *ClusterBackend) runGroupNode(ctx context.Context, g int) error {
	spec := b.spec
	jitter := stats.NewRNG(spec.Seed ^ (0x9E3779B97F4A7C15 * uint64(g+1)))
	conn, err := transport.DialRetry(ctx, b.listener.Addr().String(), b.opts.Retry, jitter)
	if err != nil {
		return ctxErrOr(ctx, err)
	}
	defer func() { _ = conn.Close() }()
	stop := transportWatch(ctx, conn)
	defer stop()
	codec, err := transport.NewCodec(conn, 0)
	if err != nil {
		return err
	}
	hsDeadline := time.Now().Add(b.opts.HandshakeTimeout)
	if err := codec.Send(&transport.Message{Type: transport.MsgGroupHello, ClientID: g}); err != nil {
		return ctxErrOr(ctx, err)
	}
	welcome, err := codec.RecvDeadline(hsDeadline)
	if err != nil {
		return ctxErrOr(ctx, err)
	}
	if welcome.Type != transport.MsgWelcome || !welcome.Coordinated {
		return fmt.Errorf("expected coordinated welcome, got %v", welcome.Type)
	}

	var (
		arena   execArena
		acc     *FixAcc
		delta   tensor.Vec
		clients []int
		gradSqs []float64
		cursors []transport.Cursor
	)
	for {
		msg, err := codec.Recv()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return err
		}
		switch msg.Type {
		case transport.MsgDone:
			return nil
		case transport.MsgBatchStart:
			if msg.ClientID != g ||
				len(msg.Scales) != len(msg.Clients) || len(msg.Cursors) != len(msg.Clients) {
				return fmt.Errorf("malformed batch (id %d, %d clients, %d scales, %d cursors)",
					msg.ClientID, len(msg.Clients), len(msg.Scales), len(msg.Cursors))
			}
			var stall time.Duration
			crash := false
			for _, n := range msg.Clients {
				var d time.Duration
				if b.opts.NodeFault != nil {
					f := b.opts.NodeFault(n, msg.Round)
					crash = crash || f.Crash
					d += f.Delay
				}
				if b.opts.NodeDelay != nil {
					d += b.opts.NodeDelay(n)
				}
				if d > stall {
					stall = d
				}
			}
			if crash {
				return transport.ErrInjectedCrash
			}
			if stall > 0 {
				timer := time.NewTimer(stall)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return ctx.Err()
				}
			}
			p := len(msg.Model)
			if acc == nil || acc.Len() != p {
				acc = NewFixAcc(p)
				delta = tensor.NewVec(p)
			} else {
				acc.Reset()
			}
			clients = clients[:0]
			gradSqs = gradSqs[:0]
			cursors = cursors[:0]
			global := tensor.Vec(msg.Model)
			for i, n := range msg.Clients {
				wc := msg.Cursors[i]
				st, err := newClientExecAt(ClientCursor{
					RNG: wc.RNG, SqCount: wc.SqCount, SqMean: wc.SqMean, SqM2: wc.SqM2,
				})
				if err != nil {
					return fmt.Errorf("client %d cursor: %w", n, err)
				}
				if err := st.localUpdate(
					ctx, spec.Model, spec.Fed.Clients[n], n,
					global, spec.LocalSteps, spec.BatchSize, msg.LR,
					&arena, delta,
				); err != nil {
					return err
				}
				u := ClientUpdate{Client: n, Delta: delta, GradSqNorm: st.sqNorms.Mean()}
				if spec.Tamper != nil {
					spec.Tamper(msg.Round, &u)
				}
				if err := acc.AddScaled(msg.Scales[i], u.Delta); err != nil {
					return err
				}
				c := st.cursor()
				clients = append(clients, u.Client)
				gradSqs = append(gradSqs, u.GradSqNorm)
				cursors = append(cursors, transport.Cursor{
					RNG: c.RNG, SqCount: c.SqCount, SqMean: c.SqMean, SqM2: c.SqM2,
				})
			}
			lo, hi, sat := acc.Limbs()
			if err := codec.Send(&transport.Message{
				Type: transport.MsgPartial, ClientID: g, Round: msg.Round,
				Clients: clients, GradSqs: gradSqs, Cursors: cursors,
				Lo: lo, Hi: hi, Sat: sat,
			}); err != nil {
				return ctxErrOr(ctx, err)
			}
		default:
			return fmt.Errorf("unexpected message %v", msg.Type)
		}
	}
}

// transportWatch severs conn when ctx is cancelled — the node-side
// counterpart of the coordinator's conn sweep, needed because a reviving
// node's cancel must also unblock a read already pending on a live socket.
func transportWatch(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-done:
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// ctxErrOr maps an error surfaced by a cancellation-severed socket back to
// the context's error.
func ctxErrOr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

var (
	_ ExecutionBackend = (*ClusterBackend)(nil)
	_ PartialBackend   = (*ClusterBackend)(nil)
	_ StatefulBackend  = (*ClusterBackend)(nil)
	_ EpochBackend     = (*ClusterBackend)(nil)
)
