package engine

import (
	"math"
	"reflect"
	"testing"
)

// churnPlan is the canonical elastic fixture: clients 0-3 start, 4 joins at
// round 3, 1 leaves at round 6.
func churnPlan() *MembershipPlan {
	return &MembershipPlan{
		Initial: []int{0, 1, 2, 3},
		Events: []MembershipEvent{
			{Round: 3, Join: []int{4}},
			{Round: 6, Leave: []int{1}},
		},
	}
}

func TestMembershipPlanValidate(t *testing.T) {
	if err := churnPlan().Validate(5, 10); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	// Nil Initial means the whole fleet starts active.
	full := &MembershipPlan{Events: []MembershipEvent{{Round: 2, Leave: []int{0}}}}
	if err := full.Validate(3, 5); err != nil {
		t.Fatalf("nil-initial plan rejected: %v", err)
	}

	bad := map[string]*MembershipPlan{
		"empty initial roster": {Initial: []int{}},
		"initial out of range": {Initial: []int{0, 5}},
		"initial not ascending": {Initial: []int{2, 1}},
		"initial duplicate":    {Initial: []int{1, 1}},
		"event at round 0": {Events: []MembershipEvent{
			{Round: 0, Leave: []int{0}}}},
		"event past horizon": {Events: []MembershipEvent{
			{Round: 10, Leave: []int{0}}}},
		"events not increasing": {Events: []MembershipEvent{
			{Round: 3, Leave: []int{0}}, {Round: 3, Leave: []int{1}}}},
		"empty event": {Events: []MembershipEvent{{Round: 2}}},
		"join out of range": {Initial: []int{0}, Events: []MembershipEvent{
			{Round: 2, Join: []int{5}}}},
		"join list not ascending": {Initial: []int{0}, Events: []MembershipEvent{
			{Round: 2, Join: []int{2, 1}}}},
		"join while active": {Events: []MembershipEvent{
			{Round: 2, Join: []int{1}}}},
		"rejoin after leave": {Events: []MembershipEvent{
			{Round: 2, Leave: []int{1}}, {Round: 4, Join: []int{1}}}},
		"leave out of range": {Events: []MembershipEvent{
			{Round: 2, Leave: []int{5}}}},
		"leave list not ascending": {Events: []MembershipEvent{
			{Round: 2, Leave: []int{2, 1}}}},
		"leave never-joined": {Initial: []int{0, 1}, Events: []MembershipEvent{
			{Round: 2, Leave: []int{3}}}},
		"double leave": {Events: []MembershipEvent{
			{Round: 2, Leave: []int{1}}, {Round: 4, Leave: []int{1}}}},
		"empties the fleet": {Initial: []int{0}, Events: []MembershipEvent{
			{Round: 2, Leave: []int{0}}}},
	}
	for name, p := range bad {
		if err := p.Validate(5, 10); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEpochFenceposts pins the boundary convention everything else hangs
// off: an event at round r fires after the commit of round r-1, so it is
// not yet counted at boundary r, and is counted at boundary r+1.
func TestEpochFenceposts(t *testing.T) {
	p := churnPlan() // events at rounds 3 and 6
	for boundary, want := range map[int]int{
		0: 0, 1: 0, 3: 0,
		4: 1, 5: 1, 6: 1,
		7: 2, 10: 2,
	} {
		if got := p.EpochAt(boundary); got != want {
			t.Errorf("EpochAt(%d) = %d, want %d", boundary, got, want)
		}
	}
	var nilPlan *MembershipPlan
	if nilPlan.EpochAt(5) != 0 {
		t.Error("nil plan must sit at epoch 0 forever")
	}

	for boundary, want := range map[int][]bool{
		0: {true, true, true, true, false},
		3: {true, true, true, true, false},
		4: {true, true, true, true, true},
		6: {true, true, true, true, true},
		7: {true, false, true, true, true},
	} {
		if got := p.ActiveAt(boundary, 5); !reflect.DeepEqual(got, want) {
			t.Errorf("ActiveAt(%d) = %v, want %v", boundary, got, want)
		}
	}
	if got := nilPlan.ActiveAt(2, 3); !reflect.DeepEqual(got, []bool{true, true, true}) {
		t.Errorf("nil plan ActiveAt = %v, want all active", got)
	}
}

// TestJoinsAfter: the cluster backend asks which prospective members will
// dial in during a run starting at a boundary — including a join firing
// exactly at that boundary's round.
func TestJoinsAfter(t *testing.T) {
	p := churnPlan()
	if got := p.joinsAfter(0); !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("joinsAfter(0) = %v, want [4]", got)
	}
	if got := p.joinsAfter(3); !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("joinsAfter(3) = %v, want [4]", got)
	}
	if got := p.joinsAfter(4); got != nil {
		t.Errorf("joinsAfter(4) = %v, want nil", got)
	}
	var nilPlan *MembershipPlan
	if got := nilPlan.joinsAfter(0); got != nil {
		t.Errorf("nil plan joinsAfter = %v, want nil", got)
	}
}

func TestRenormWeights(t *testing.T) {
	weights := []float64{0.1, 0.2, 0.3, 0.4}
	dst := make([]float64, 4)
	renormWeights(dst, weights, []bool{true, false, true, false})
	want := []float64{0.1 / 0.4, 0, 0.3 / 0.4, 0}
	sum := 0.0
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-15 {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
		sum += dst[i]
	}
	if math.Abs(sum-1) > 1e-15 {
		t.Fatalf("renormalized weights sum to %v, want 1", sum)
	}
	// Full fleet: identical to the original normalization.
	renormWeights(dst, weights, []bool{true, true, true, true})
	for i := range dst {
		if math.Abs(dst[i]-weights[i]) > 1e-15 {
			t.Fatalf("full-fleet renorm perturbed weight %d: %v", i, dst[i])
		}
	}
}

func TestFilterActive(t *testing.T) {
	active := []bool{true, false, true, false, true}
	got := filterActive([]int{0, 1, 2, 3, 4}, active)
	if !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Fatalf("filterActive = %v, want [0 2 4]", got)
	}
	if got := filterActive([]int{1, 3}, active); len(got) != 0 {
		t.Fatalf("all-inactive filter = %v, want empty", got)
	}
	if got := filterActive(nil, active); len(got) != 0 {
		t.Fatalf("nil participants filter = %v, want empty", got)
	}
}
