package engine

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
	"unbiasedfl/internal/testutil"
)

func testFederation(t testing.TB, seed uint64, clients int) *data.Federated {
	t.Helper()
	cfg := data.MNISTLikeConfig()
	cfg.NumClients = clients
	cfg.TotalSamples = clients * 120
	cfg.TestSamples = 200
	cfg.Dim = 8
	cfg.Classes = 4
	cfg.MaxClasses = 3
	fed, err := data.GenerateImageLike(stats.NewRNG(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func testModel(t testing.TB, fed *data.Federated) *model.LogisticRegression {
	t.Helper()
	m, err := model.NewLogisticRegression(fed.Train.Dim, fed.Train.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fullSampler includes every client in every round.
type fullSampler struct{ n int }

func (s fullSampler) Sample(int) []int {
	out := make([]int, s.n)
	for i := range out {
		out[i] = i
	}
	return out
}
func (s fullSampler) NumClients() int { return s.n }

// bernoulliSampler mirrors fl.BernoulliSampler for the engine tests.
type bernoulliSampler struct {
	q   []float64
	rng *stats.RNG
}

func (s *bernoulliSampler) Sample(int) []int {
	var out []int
	for n, qn := range s.q {
		if s.rng.Bernoulli(qn) {
			out = append(out, n)
		}
	}
	return out
}
func (s *bernoulliSampler) NumClients() int       { return len(s.q) }
func (s *bernoulliSampler) EffectiveQ() []float64 { return append([]float64(nil), s.q...) }

func testSpec(t testing.TB, fed *data.Federated, m model.Model, rounds int, sampler Sampler) Spec {
	t.Helper()
	return Spec{
		Model: m, Fed: fed,
		Rounds: rounds, LocalSteps: 4, BatchSize: 8,
		Schedule: ExpDecay{Eta0: 0.1, Decay: 0.996}, EvalEvery: rounds, Seed: 7,
		Sampler: sampler, Aggregator: UnbiasedAggregator{},
	}
}

// TestLocalDispatchZeroAllocs is the end-to-end allocation gate on the FL
// hot path: with the per-client scratch arenas warm, a full round dispatch
// through the local backend (batch draws, fused SGD steps, gradient-norm
// stats, deltas for every participant) must perform zero heap allocations.
func TestLocalDispatchZeroAllocs(t *testing.T) {
	fed := testFederation(t, 21, 4)
	m := testModel(t, fed)
	spec := testSpec(t, fed, m, 4, fullSampler{n: 4})
	b := NewLocalBackend(LocalOptions{})
	if err := b.Open(context.Background(), &spec); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	global := m.ZeroParams()
	tasks := make([]ClientTask, fed.NumClients())
	for n := range tasks {
		tasks[n] = ClientTask{Client: n, LR: 0.01}
	}
	if _, err := b.Dispatch(context.Background(), 0, global, tasks); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := b.Dispatch(context.Background(), 0, global, tasks); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state local dispatch allocates %v times per run", allocs)
	}
}

// TestOrchestratorDeterministicAcrossWorkerCounts: the pooled local backend
// must produce a bit-identical model whether the pool has one worker or
// several.
func TestOrchestratorDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(procs int) tensor.Vec {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		fed := testFederation(t, 3, 5)
		m := testModel(t, fed)
		sampler := &bernoulliSampler{q: []float64{0.9, 0.6, 0.4, 0.8, 0.5}, rng: stats.NewRNG(5)}
		spec := testSpec(t, fed, m, 12, sampler)
		res, err := Run(context.Background(), spec, NewLocalBackend(LocalOptions{Parallel: true}))
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalModel
	}
	one := run(1)
	four := run(4)
	for j := range one {
		if one[j] != four[j] {
			t.Fatalf("param %d differs across worker counts: %v vs %v", j, one[j], four[j])
		}
	}
}

// TestClusterBackendMatchesLocalBackend is the engine-level half of the
// backend-equivalence guarantee: the same spec through LocalBackend and
// through a real TCP ClusterBackend must produce byte-identical models,
// histories, and gradient statistics.
func TestClusterBackendMatchesLocalBackend(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	fed := testFederation(t, 13, 4)
	m := testModel(t, fed)
	mk := func() Spec {
		sampler := &bernoulliSampler{q: []float64{0.9, 0.7, 0.8, 0.6}, rng: stats.NewRNG(11)}
		return testSpec(t, fed, m, 8, sampler)
	}
	local, err := Run(context.Background(), mk(), NewLocalBackend(LocalOptions{Parallel: true}))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := Run(context.Background(), mk(), NewClusterBackend(ClusterOptions{
		Timeout: 20 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for j := range local.FinalModel {
		if math.Float64bits(local.FinalModel[j]) != math.Float64bits(cluster.FinalModel[j]) {
			t.Fatalf("model[%d]: local %v vs cluster %v — the wire changed the arithmetic",
				j, local.FinalModel[j], cluster.FinalModel[j])
		}
	}
	for n := range local.GradSqNorm {
		if math.Float64bits(local.GradSqNorm[n]) != math.Float64bits(cluster.GradSqNorm[n]) {
			t.Fatalf("client %d GradSqNorm: local %v vs cluster %v",
				n, local.GradSqNorm[n], cluster.GradSqNorm[n])
		}
	}
	if len(local.History) != len(cluster.History) {
		t.Fatalf("history length %d vs %d", len(local.History), len(cluster.History))
	}
	for i := range local.History {
		lh, ch := local.History[i], cluster.History[i]
		if lh.Participants != ch.Participants ||
			math.Float64bits(lh.GlobalLoss) != math.Float64bits(ch.GlobalLoss) ||
			math.Float64bits(lh.TestAccuracy) != math.Float64bits(ch.TestAccuracy) {
			t.Fatalf("round %d metrics differ: %+v vs %+v", i, lh, ch)
		}
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestClusterBackendHonorsCancellation cancels mid-run and requires a prompt
// unwind with no leaked goroutines or sockets.
func TestClusterBackendHonorsCancellation(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	fed := testFederation(t, 17, 3)
	m := testModel(t, fed)
	spec := testSpec(t, fed, m, 500, fullSampler{n: 3})
	// A real per-round node stall keeps the run alive long enough for the
	// cancellation to land mid-flight.
	backend := NewClusterBackend(ClusterOptions{
		Timeout:   20 * time.Second,
		NodeDelay: func(int) time.Duration { return 10 * time.Millisecond },
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, spec, backend)
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled cluster run returned %v, want context.Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cluster run did not unwind after cancellation")
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestOrchestratorRejectsDuplicateParticipants pins the guard protecting the
// single-owner per-client state from samplers that draw with replacement.
func TestOrchestratorRejectsDuplicateParticipants(t *testing.T) {
	fed := testFederation(t, 30, 3)
	m := testModel(t, fed)
	spec := testSpec(t, fed, m, 2, dupSampler{n: 3})
	if _, err := Run(context.Background(), spec, NewLocalBackend(LocalOptions{})); err == nil {
		t.Fatal("expected duplicate-participant error")
	}
}

type dupSampler struct{ n int }

func (d dupSampler) Sample(int) []int { return []int{0, 1, 0} }
func (d dupSampler) NumClients() int  { return d.n }

// BenchmarkLocalUpdate measures one participant's full local update (E=4
// fused SGD steps at batch 8) through the shared client executor.
func BenchmarkLocalUpdate(b *testing.B) {
	fed := testFederation(b, 21, 4)
	m := testModel(b, fed)
	st := newClientExecs(7, 1)[0]
	global := m.ZeroParams()
	delta := tensor.NewVec(len(global))
	var arena execArena
	ctx := context.Background()
	if err := st.localUpdate(ctx, m, fed.Clients[0], 0, global, 10, 16, 0.01, &arena, delta); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.localUpdate(ctx, m, fed.Clients[0], 0, global, 10, 16, 0.01, &arena, delta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrchestratorRoundLocal measures whole training rounds through the
// orchestrator + pooled LocalBackend, aggregation included — the engine-side
// counterpart of fl.BenchmarkRunnerRound.
func BenchmarkOrchestratorRoundLocal(b *testing.B) {
	fed := testFederation(b, 21, 8)
	m := testModel(b, fed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := Spec{
			Model: m, Fed: fed,
			Rounds: 1, LocalSteps: 8, BatchSize: 24,
			Schedule:  ExpDecay{Eta0: 0.1, Decay: 0.996},
			EvalEvery: 2, // skip evaluation; this measures the update path
			Seed:      1,
			Sampler:   fullSampler{n: 8}, Aggregator: UnbiasedAggregator{},
		}
		if _, err := Run(context.Background(), spec, NewLocalBackend(LocalOptions{Parallel: true})); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrchestratorRoundCluster measures the same rounds through a real
// loopback TCP ClusterBackend: the cost of the wire relative to
// BenchmarkOrchestratorRoundLocal. The fleet boots once; the loop measures
// steady-state rounds.
func BenchmarkOrchestratorRoundCluster(b *testing.B) {
	fed := testFederation(b, 21, 8)
	m := testModel(b, fed)
	spec := Spec{
		Model: m, Fed: fed,
		Rounds: 1, LocalSteps: 8, BatchSize: 24,
		Schedule:  ExpDecay{Eta0: 0.1, Decay: 0.996},
		EvalEvery: 2,
		Seed:      1,
		Sampler:   fullSampler{n: 8}, Aggregator: UnbiasedAggregator{},
	}
	backend := NewClusterBackend(ClusterOptions{Timeout: 20 * time.Second})
	if err := backend.Open(context.Background(), &spec); err != nil {
		b.Fatal(err)
	}
	defer func() { _ = backend.Close() }()
	global := m.ZeroParams()
	tasks := make([]ClientTask, fed.NumClients())
	for n := range tasks {
		tasks[n] = ClientTask{Client: n, LR: 0.05}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		updates, err := backend.Dispatch(context.Background(), 0, global, tasks)
		if err != nil {
			b.Fatal(err)
		}
		if err := (UnbiasedAggregator{}).Aggregate(global, updates, fed.Weights, specQ(fed.NumClients())); err != nil {
			b.Fatal(err)
		}
	}
}

func specQ(n int) []float64 {
	q := make([]float64, n)
	for i := range q {
		q[i] = 1
	}
	return q
}
