package engine

import (
	"context"
	"testing"
	"time"

	"unbiasedfl/internal/testutil"
	"unbiasedfl/internal/transport"
)

// replaySampler replays a fixed per-round participant schedule — used to run
// a local twin of an observed degraded cluster run.
type replaySampler struct {
	rounds [][]int
	n      int
}

func (s *replaySampler) Sample(round int) []int { return s.rounds[round] }
func (s *replaySampler) NumClients() int        { return s.n }

// TestClusterSelfHealing is the robustness acceptance test: a round with one
// crashed node and one hung node must complete within the round deadline,
// record the missing clients as unavailable in the participation ledger, and
// revive both nodes — and the degraded run's arithmetic must be
// bit-identical to a local run over the same participation schedule (the
// Lemma-1 regime: a missing client is just an unavailable client).
func TestClusterSelfHealing(t *testing.T) {
	const (
		nClients     = 6
		rounds       = 10
		crashClient  = 2
		hangClient   = 4
		crashRound   = 1
		hangRound    = 2
		roundTimeout = 2 * time.Second
	)
	baseline := testutil.GoroutineBaseline()

	fed := testFederation(t, 47, nClients)
	m := testModel(t, fed)
	spec := testSpec(t, fed, m, rounds, fullSampler{n: nClients})
	backend := NewClusterBackend(ClusterOptions{
		Timeout:      20 * time.Second,
		RoundTimeout: roundTimeout,
		NodeFault: func(client, round int) transport.RoundFault {
			switch {
			case client == crashClient && round == crashRound:
				return transport.RoundFault{Crash: true}
			case client == hangClient && round == hangRound:
				// Far beyond the round deadline: a hung peer, not a straggler.
				return transport.RoundFault{Delay: time.Minute}
			}
			return transport.RoundFault{}
		},
	})

	start := time.Now()
	res, err := Run(context.Background(), spec, backend)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	// The hung node's 1-minute stall must not leak into wall time: the
	// deadline forfeits its round and the run moves on.
	if elapsed > 10*roundTimeout {
		t.Fatalf("run took %v: the round deadline did not contain the hung node", elapsed)
	}
	if len(res.History) != rounds {
		t.Fatalf("history has %d rounds, want %d", len(res.History), rounds)
	}

	contains := func(ids []int, n int) bool {
		for _, id := range ids {
			if id == n {
				return true
			}
		}
		return false
	}
	if contains(res.History[crashRound].ParticipantIDs, crashClient) {
		t.Errorf("round %d: crashed client %d recorded as participating", crashRound, crashClient)
	}
	if contains(res.History[hangRound].ParticipantIDs, hangClient) {
		t.Errorf("round %d: hung client %d recorded as participating", hangRound, hangClient)
	}
	rejoined := func(client, after int) bool {
		for r := after + 1; r < rounds; r++ {
			if contains(res.History[r].ParticipantIDs, client) {
				return true
			}
		}
		return false
	}
	if !rejoined(crashClient, crashRound) {
		t.Errorf("crashed client %d never rejoined after round %d", crashClient, crashRound)
	}
	if !rejoined(hangClient, hangRound) {
		t.Errorf("hung client %d never rejoined after round %d", hangClient, hangRound)
	}

	health := backend.Health()
	for n := 0; n < nClients; n++ {
		switch n {
		case crashClient, hangClient:
			if health.Misses[n] < 1 {
				t.Errorf("client %d: no miss ledgered", n)
			}
			if health.Respawns[n] < 1 {
				t.Errorf("client %d: node never revived", n)
			}
		default:
			if health.Misses[n] != 0 {
				t.Errorf("healthy client %d ledgered %d misses", n, health.Misses[n])
			}
		}
	}

	// Bit-identity twin: replay the observed participation schedule through
	// the local backend. If the healing path is unbiased bookkeeping and
	// nothing else, the degraded cluster run and the local replay are the
	// same computation.
	schedule := make([][]int, rounds)
	for r := range schedule {
		schedule[r] = res.History[r].ParticipantIDs
	}
	twinSpec := testSpec(t, fed, m, rounds, &replaySampler{rounds: schedule, n: nClients})
	twin, err := Run(context.Background(), twinSpec, NewLocalBackend(LocalOptions{Parallel: true}))
	if err != nil {
		t.Fatalf("local replay twin failed: %v", err)
	}
	mustMatch(t, twin, res)

	testutil.WaitNoLeaks(t, baseline, 5*time.Second)
}

// TestClusterStrictModeStillFailsFast pins that without a RoundTimeout the
// historical contract is intact: a crashing node fails the round instead of
// being healed around.
func TestClusterStrictModeStillFailsFast(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	fed := testFederation(t, 53, 3)
	m := testModel(t, fed)
	spec := testSpec(t, fed, m, 4, fullSampler{n: 3})
	backend := NewClusterBackend(ClusterOptions{
		Timeout: 10 * time.Second,
		NodeFault: func(client, round int) transport.RoundFault {
			if client == 1 && round == 1 {
				return transport.RoundFault{Crash: true}
			}
			return transport.RoundFault{}
		},
	})
	if _, err := Run(context.Background(), spec, backend); err == nil {
		t.Fatal("strict-mode run with a crashing node succeeded")
	}
	testutil.WaitNoLeaks(t, baseline, 5*time.Second)
}
