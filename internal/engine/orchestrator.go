package engine

import (
	"context"
	"fmt"
	"sort"

	"unbiasedfl/internal/tensor"
)

// Orchestrator drives the canonical round protocol over an execution
// backend. It is single-use: construct one per run (or use Run, which does).
type Orchestrator struct {
	Spec    Spec
	Backend ExecutionBackend

	// Per-round buffers, reused across rounds so the steady-state loop does
	// not allocate.
	tasks []ClientTask
	seen  []bool
	// Hierarchical-mode buffers: the top-level fixed-point accumulator that
	// merges streamed group partials — the only model-sized aggregation
	// state the coordinator holds — and the participant-id scratch.
	acc *FixAcc
	ids []int
	// Commit-hook buffers, reused across OnRoundCommit calls.
	commit  RunState
	cursors []ClientCursor
}

// Run executes the spec on the backend. It is the single implementation of
// the round protocol: equilibrium-priced sampling, dispatch, deterministic
// index-ordered aggregation, divergence checks, throttled evaluation, and
// observer hooks. Cancelling the context stops training promptly — the
// check granularity is one client-side local update — and the error is
// ctx.Err(). The backend is closed before Run returns.
func (o *Orchestrator) Run(ctx context.Context) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Backend == nil {
		return nil, fmt.Errorf("engine: nil backend")
	}
	s := &o.Spec
	if err := s.Validate(); err != nil {
		return nil, err
	}

	nClients := s.Fed.NumClients()
	global := s.Model.ZeroParams()
	history := make([]RoundMetrics, 0, s.Rounds)
	gradSq := make([]float64, nClients)
	q := s.participationLevels()
	weights := s.Fed.Weights

	// Resume restoration happens before Open: a cluster backend hands each
	// node its cursor inside the welcome message, so the backend must know
	// the cursors by the time its fleet boots.
	start := 0
	if r := s.Resume; r != nil {
		if err := validateResume(r, s, len(global), nClients); err != nil {
			return nil, err
		}
		start = r.NextRound
		copy(global, r.Model)
		history = append(history, r.History...)
		ss, statefulSampler := s.Sampler.(StatefulSampler)
		switch {
		case r.Sampler != nil && !statefulSampler:
			return nil, fmt.Errorf("engine: resume carries sampler state but the sampler is stateless")
		case r.Sampler == nil && statefulSampler && start > 0:
			return nil, fmt.Errorf("engine: resume lacks state for a stateful sampler")
		case r.Sampler != nil:
			if err := ss.RestoreSamplerState(r.Sampler); err != nil {
				return nil, fmt.Errorf("engine: restore sampler: %w", err)
			}
		}
		sb, statefulBackend := o.Backend.(StatefulBackend)
		switch {
		case len(r.Clients) > 0 && !statefulBackend:
			return nil, fmt.Errorf("engine: resume carries client cursors but the backend is stateless")
		case len(r.Clients) == 0 && statefulBackend && start > 0:
			return nil, fmt.Errorf("engine: resume lacks client cursors")
		case len(r.Clients) > 0:
			if err := sb.RestoreClientCursors(r.Clients); err != nil {
				return nil, fmt.Errorf("engine: restore client cursors: %w", err)
			}
			for n := range r.Clients {
				// gradSq[n] only ever holds the client's running mean, which
				// moves only when the client participates — so the cursor's
				// mean reproduces it exactly.
				if r.Clients[n].SqCount > 0 {
					gradSq[n] = r.Clients[n].SqMean
				}
			}
		}
	}

	// Membership: establish the roster at the starting boundary and fire the
	// OnEpoch hook for every epoch already behind us — epoch zero always, and
	// on resume each event that fired before the boundary, in order. Replay
	// is what lets a deterministic re-pricing hook (warm ≡ cold solves)
	// reconstruct the sampler's q and its own ledger exactly, so a resumed
	// elastic run stays byte-identical to its uninterrupted twin.
	plan := s.Membership
	var active []bool
	var wbuf []float64
	epoch, evIdx := 0, 0
	if plan != nil {
		active = plan.ActiveAt(0, nClients)
		if s.OnEpoch != nil {
			if err := s.OnEpoch(Roster{Epoch: 0, Round: 0, Active: active}); err != nil {
				return nil, fmt.Errorf("engine: epoch 0: %w", err)
			}
		}
		for evIdx < len(plan.Events) && plan.Events[evIdx].Round < start {
			ev := &plan.Events[evIdx]
			evIdx++
			epoch++
			for _, n := range ev.Join {
				active[n] = true
			}
			for _, n := range ev.Leave {
				active[n] = false
			}
			if s.OnEpoch != nil {
				roster := Roster{Epoch: epoch, Round: ev.Round, Active: active, Joined: ev.Join, Left: ev.Leave}
				if err := s.OnEpoch(roster); err != nil {
					return nil, fmt.Errorf("engine: replay epoch %d: %w", epoch, err)
				}
			}
		}
		q = s.participationLevels()
		wbuf = make([]float64, nClients)
		weights = renormWeights(wbuf, s.Fed.Weights, active)
	}

	// Hierarchical mode: participants fold into sub-aggregator group
	// partials where they execute, and the coordinator merges only the
	// partials. Resolved once — the backend either supports it or the spec
	// is rejected before any work runs.
	useHier := s.GroupSize > 1
	var hb PartialBackend
	if useHier {
		var ok bool
		if hb, ok = o.Backend.(PartialBackend); !ok {
			return nil, fmt.Errorf("engine: GroupSize %d needs a hierarchical backend, %T is not one", s.GroupSize, o.Backend)
		}
		if _, ok := s.Aggregator.(UnbiasedAggregator); !ok {
			return nil, fmt.Errorf("engine: hierarchical aggregation supports only the unbiased (Lemma-1) aggregator, got %T", s.Aggregator)
		}
	}

	if err := o.Backend.Open(ctx, s); err != nil {
		return nil, fmt.Errorf("engine: open backend: %w", err)
	}
	closed := false
	defer func() {
		if !closed {
			_ = o.Backend.Close()
		}
	}()

	for round := start; round < s.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Epoch boundary: the event at this round fires before the round
		// executes. The backend churns its node fleet first (admitting
		// joiners, retiring leavers), then the hook re-prices, then the
		// aggregation inputs are refreshed from the new roster.
		if plan != nil && evIdx < len(plan.Events) && plan.Events[evIdx].Round == round {
			ev := &plan.Events[evIdx]
			evIdx++
			epoch++
			for _, n := range ev.Join {
				active[n] = true
			}
			for _, n := range ev.Leave {
				active[n] = false
			}
			roster := Roster{Epoch: epoch, Round: round, Active: active, Joined: ev.Join, Left: ev.Leave}
			if eb, ok := o.Backend.(EpochBackend); ok {
				if err := eb.ApplyEpoch(ctx, roster); err != nil {
					return nil, ctxErrOr(ctx, fmt.Errorf("engine: epoch %d apply: %w", epoch, err))
				}
			}
			if s.OnEpoch != nil {
				if err := s.OnEpoch(roster); err != nil {
					return nil, fmt.Errorf("engine: epoch %d: %w", epoch, err)
				}
			}
			q = s.participationLevels()
			weights = renormWeights(wbuf, s.Fed.Weights, active)
		}
		if s.OnRoundStart != nil {
			s.OnRoundStart(round)
		}
		participants := s.Sampler.Sample(round)
		if plan != nil {
			participants = filterActive(participants, active)
		}
		lr := s.Schedule.LR(round)
		if err := o.checkDistinct(participants, nClients); err != nil {
			return nil, err
		}

		if cap(o.tasks) < len(participants) {
			o.tasks = make([]ClientTask, len(participants))
		}
		tasks := o.tasks[:len(participants)]
		for i, n := range participants {
			tasks[i] = ClientTask{Client: n, LR: lr}
			if useHier {
				qn := q[n]
				if qn <= 0 {
					return nil, fmt.Errorf("fl: participant %d has non-positive q", n)
				}
				tasks[i].Scale = weights[n] / qn
			}
		}

		// The round's record lists the clients whose updates actually landed.
		// Strict backends execute every task, so this is exactly the sampled
		// set; a self-healing backend may deliver fewer (a crashed or
		// deadline-missing node — in hierarchical mode a whole missed group),
		// and the shortfall is recorded here — the client is simply
		// unavailable this round, which is the regime the unbiased
		// aggregation rule already prices in.
		var ids []int
		if useHier {
			hids, err := o.hierRound(ctx, hb, round, global, tasks, gradSq)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				return nil, fmt.Errorf("round %d: %w", round, err)
			}
			ids = make([]int, len(hids))
			copy(ids, hids)
		} else {
			updates, err := o.Backend.Dispatch(ctx, round, global, tasks)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				return nil, fmt.Errorf("round %d: %w", round, err)
			}
			if s.Tamper != nil {
				for i := range updates {
					s.Tamper(round, &updates[i])
				}
			}
			for _, u := range updates {
				gradSq[u.Client] = u.GradSqNorm
			}
			if err := s.Aggregator.Aggregate(global, updates, weights, q); err != nil {
				return nil, fmt.Errorf("round %d aggregate: %w", round, err)
			}
			ids = make([]int, len(updates))
			for i, u := range updates {
				ids[i] = u.Client
			}
		}
		if !global.IsFinite() {
			return nil, fmt.Errorf("round %d: model diverged", round)
		}

		m := RoundMetrics{
			Round:          round,
			Participants:   len(ids),
			ParticipantIDs: ids,
		}
		if (round+1)%s.EvalEvery == 0 || round == s.Rounds-1 {
			loss, err := s.Model.Loss(global, s.Fed.Train)
			if err != nil {
				return nil, err
			}
			acc, err := s.Model.Accuracy(global, s.Fed.Test)
			if err != nil {
				return nil, err
			}
			m.Evaluated = true
			m.GlobalLoss = loss
			m.TestAccuracy = acc
		}
		history = append(history, m)
		if s.OnRound != nil {
			s.OnRound(m)
		}
		if s.OnRoundCommit != nil {
			if err := o.commitRound(round+1, epoch, global, history); err != nil {
				return nil, fmt.Errorf("round %d commit: %w", round, err)
			}
		}
	}

	// Close before returning so backend teardown errors (a cluster node that
	// died after its last update, say) surface instead of vanishing.
	closed = true
	if err := o.Backend.Close(); err != nil {
		return nil, fmt.Errorf("engine: close backend: %w", err)
	}

	res := &RunResult{
		History:    history,
		FinalModel: global,
		GradSqNorm: gradSq,
	}
	if len(history) > 0 {
		last := history[len(history)-1]
		res.FinalLoss = last.GlobalLoss
		res.FinalAcc = last.TestAccuracy
	}
	return res, nil
}

// hierRound dispatches one hierarchical round: the backend folds each
// sub-aggregator group's weighted deltas where they execute and streams the
// partials here, where they merge into a single fixed-point accumulator —
// the only model-sized aggregation state the coordinator holds, O(model)
// regardless of fleet size. The returned ids (ascending) alias o.ids.
func (o *Orchestrator) hierRound(
	ctx context.Context, hb PartialBackend, round int,
	global tensor.Vec, tasks []ClientTask, gradSq []float64,
) ([]int, error) {
	s := &o.Spec
	if o.acc == nil || o.acc.Len() != len(global) {
		o.acc = NewFixAcc(len(global))
	} else {
		o.acc.Reset()
	}
	o.ids = o.ids[:0]
	err := hb.DispatchPartials(ctx, round, global, tasks, s.GroupSize, func(p Partial) error {
		if len(p.Clients) != len(p.GradSq) {
			return fmt.Errorf("engine: group %d partial carries %d clients but %d gradient stats",
				p.Group, len(p.Clients), len(p.GradSq))
		}
		if err := o.acc.MergeLimbs(p.Lo, p.Hi, p.Sat); err != nil {
			return err
		}
		for i, n := range p.Clients {
			gradSq[n] = p.GradSq[i]
		}
		o.ids = append(o.ids, p.Clients...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Partial arrival order is backend-scheduling dependent; the integer
	// merge is commutative so the model is not, but the participant record
	// must match the flat path's ascending order.
	sort.Ints(o.ids)
	if err := o.acc.AddTo(global); err != nil {
		return nil, err
	}
	return o.ids, nil
}

// commitRound assembles the resumable state at the new round boundary and
// hands it to the OnRoundCommit hook. The RunState and its cursor slice are
// reused between calls; the hook owns the data only for the duration of its
// call (see Spec.OnRoundCommit).
func (o *Orchestrator) commitRound(nextRound, epoch int, global tensor.Vec, history []RoundMetrics) error {
	s := &o.Spec
	st := &o.commit
	st.NextRound = nextRound
	st.Epoch = epoch
	st.Model = global
	st.History = history
	st.Sampler = nil
	if ss, ok := s.Sampler.(StatefulSampler); ok {
		st.Sampler = ss.SamplerState()
	}
	st.Clients = nil
	if sb, ok := o.Backend.(StatefulBackend); ok {
		n := s.Fed.NumClients()
		if cap(o.cursors) < n {
			o.cursors = make([]ClientCursor, n)
		}
		st.Clients = o.cursors[:n]
		if err := sb.ClientCursors(st.Clients); err != nil {
			return err
		}
	}
	return s.OnRoundCommit(st)
}

// checkDistinct rejects samplers that hand out the same client twice in one
// round: a client's RNG, scratch arena, and delta buffer are single-owner
// within a round, so a duplicate would corrupt the aggregate (and race under
// a parallel backend).
func (o *Orchestrator) checkDistinct(participants []int, nClients int) error {
	if len(o.seen) != nClients {
		o.seen = make([]bool, nClients)
	}
	dup := -1
	for _, n := range participants {
		if n < 0 || n >= nClients {
			dup = -2
			break
		}
		if o.seen[n] {
			dup = n
			break
		}
		o.seen[n] = true
	}
	for _, n := range participants {
		if n >= 0 && n < nClients {
			o.seen[n] = false
		}
	}
	switch {
	case dup == -2:
		return fmt.Errorf("engine: sampler returned an out-of-range client")
	case dup >= 0:
		return fmt.Errorf("engine: sampler returned client %d twice in one round", dup)
	}
	return nil
}

// Run executes spec on backend — the package's one-call entry point.
func Run(ctx context.Context, spec Spec, backend ExecutionBackend) (*RunResult, error) {
	o := &Orchestrator{Spec: spec, Backend: backend}
	return o.Run(ctx)
}
