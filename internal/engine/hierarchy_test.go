package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
	"unbiasedfl/internal/testutil"
	"unbiasedfl/internal/transport"
)

// hierQ is the participation vector the hierarchy tests share.
var hierQ = []float64{0.9, 0.7, 0.8, 0.6, 0.5, 0.95, 0.4}

// requireSameRun fails unless two results are bit-identical: final model,
// per-client gradient statistics, and full round histories including the
// participant sets.
func requireSameRun(t *testing.T, name string, want, got *RunResult) {
	t.Helper()
	for j := range want.FinalModel {
		if math.Float64bits(want.FinalModel[j]) != math.Float64bits(got.FinalModel[j]) {
			t.Fatalf("%s: model[%d]: %v vs %v — grouping changed the arithmetic",
				name, j, want.FinalModel[j], got.FinalModel[j])
		}
	}
	for n := range want.GradSqNorm {
		if math.Float64bits(want.GradSqNorm[n]) != math.Float64bits(got.GradSqNorm[n]) {
			t.Fatalf("%s: client %d GradSqNorm: %v vs %v", name, n, want.GradSqNorm[n], got.GradSqNorm[n])
		}
	}
	if len(want.History) != len(got.History) {
		t.Fatalf("%s: history length %d vs %d", name, len(want.History), len(got.History))
	}
	for i := range want.History {
		wh, gh := want.History[i], got.History[i]
		if wh.Participants != gh.Participants ||
			math.Float64bits(wh.GlobalLoss) != math.Float64bits(gh.GlobalLoss) ||
			math.Float64bits(wh.TestAccuracy) != math.Float64bits(gh.TestAccuracy) {
			t.Fatalf("%s: round %d metrics differ: %+v vs %+v", name, i, wh, gh)
		}
		if len(wh.ParticipantIDs) != len(gh.ParticipantIDs) {
			t.Fatalf("%s: round %d participants %v vs %v", name, i, wh.ParticipantIDs, gh.ParticipantIDs)
		}
		for k := range wh.ParticipantIDs {
			if wh.ParticipantIDs[k] != gh.ParticipantIDs[k] {
				t.Fatalf("%s: round %d participants %v vs %v", name, i, wh.ParticipantIDs, gh.ParticipantIDs)
			}
		}
	}
}

// TestHierarchicalMatchesFlat is the tentpole gate: the same spec run flat
// and run hierarchically — any group size, serial or pooled, local or over
// real TCP sockets — must produce bit-identical results, because the
// fixed-point fold is independent of grouping.
func TestHierarchicalMatchesFlat(t *testing.T) {
	fed := testFederation(t, 29, 7)
	m := testModel(t, fed)
	mk := func(groupSize int) Spec {
		sampler := &bernoulliSampler{q: append([]float64(nil), hierQ...), rng: stats.NewRNG(23)}
		spec := testSpec(t, fed, m, 8, sampler)
		spec.GroupSize = groupSize
		return spec
	}
	flat, err := Run(context.Background(), mk(0), NewLocalBackend(LocalOptions{Parallel: true}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 7} {
		pooled, err := Run(context.Background(), mk(k), NewLocalBackend(LocalOptions{Parallel: true}))
		if err != nil {
			t.Fatalf("local pooled K=%d: %v", k, err)
		}
		requireSameRun(t, "local pooled", flat, pooled)
		serial, err := Run(context.Background(), mk(k), NewLocalBackend(LocalOptions{}))
		if err != nil {
			t.Fatalf("local serial K=%d: %v", k, err)
		}
		requireSameRun(t, "local serial", flat, serial)
	}

	// Cluster group mode: 7 clients at K=3 must multiplex onto exactly
	// ⌈7/3⌉ = 3 sockets, and the wire must not change the arithmetic.
	backend := NewClusterBackend(ClusterOptions{Timeout: 20 * time.Second})
	spec := mk(3)
	maxSockets := 0
	spec.OnRound = func(RoundMetrics) {
		if s := backend.Sockets(); s > maxSockets {
			maxSockets = s
		}
	}
	cluster, err := Run(context.Background(), spec, backend)
	if err != nil {
		t.Fatalf("cluster K=3: %v", err)
	}
	requireSameRun(t, "cluster", flat, cluster)
	if maxSockets == 0 || maxSockets > 3 {
		t.Fatalf("cluster used %d sockets for a 7-client fleet at K=3, want 1..3", maxSockets)
	}
}

// TestHierarchicalTamperMatchesFlat: tampering is applied inside the group
// fold node-side, and being a pure function of (round, update) it must leave
// hierarchical runs bit-identical to flat ones.
func TestHierarchicalTamperMatchesFlat(t *testing.T) {
	fed := testFederation(t, 31, 6)
	m := testModel(t, fed)
	mk := func(groupSize int) Spec {
		sampler := &bernoulliSampler{q: []float64{0.9, 0.7, 0.8, 0.6, 0.5, 0.95}, rng: stats.NewRNG(41)}
		spec := testSpec(t, fed, m, 6, sampler)
		spec.GroupSize = groupSize
		spec.Tamper = func(round int, u *ClientUpdate) {
			if u.Client == 2 {
				for j := range u.Delta {
					u.Delta[j] *= -3
				}
			}
		}
		return spec
	}
	flat, err := Run(context.Background(), mk(0), NewLocalBackend(LocalOptions{Parallel: true}))
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Run(context.Background(), mk(2), NewLocalBackend(LocalOptions{Parallel: true}))
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "tampered", flat, hier)
	cluster, err := Run(context.Background(), mk(2), NewClusterBackend(ClusterOptions{Timeout: 20 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "tampered cluster", flat, cluster)
}

// TestHierarchicalNeedsCapableBackend pins the orchestrator's gating: a
// GroupSize above one demands a PartialBackend and the Lemma-1 aggregator.
func TestHierarchicalNeedsCapableBackend(t *testing.T) {
	fed := testFederation(t, 37, 4)
	m := testModel(t, fed)
	spec := testSpec(t, fed, m, 2, fullSampler{n: 4})
	spec.GroupSize = 2
	spec.Aggregator = ProportionalAggregator{}
	if _, err := Run(context.Background(), spec, NewLocalBackend(LocalOptions{})); err == nil {
		t.Fatal("expected an error for hierarchical dispatch with a non-Lemma-1 aggregator")
	}
	spec.Aggregator = UnbiasedAggregator{}
	if _, err := Run(context.Background(), spec, flatOnlyBackend{NewLocalBackend(LocalOptions{})}); err == nil {
		t.Fatal("expected an error for hierarchical dispatch on a flat-only backend")
	}
}

// flatOnlyBackend hides LocalBackend's PartialBackend implementation
// (explicit delegation — embedding would promote DispatchPartials too).
type flatOnlyBackend struct{ inner *LocalBackend }

func (b flatOnlyBackend) Open(ctx context.Context, s *Spec) error { return b.inner.Open(ctx, s) }
func (b flatOnlyBackend) Close() error                            { return b.inner.Close() }
func (b flatOnlyBackend) Dispatch(ctx context.Context, round int, global tensor.Vec, tasks []ClientTask) ([]ClientUpdate, error) {
	return b.inner.Dispatch(ctx, round, global, tasks)
}

// TestClusterGroupHalfOpenPeerForfeitsRound is the multiplexed half-open
// regression: a group node that hangs past the round deadline (a stalled
// batch, connection still open) must forfeit the round for every member it
// was tasked with, be severed and revived, and leave the rest of the fleet
// — and the run — intact.
func TestClusterGroupHalfOpenPeerForfeitsRound(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	fed := testFederation(t, 43, 6)
	m := testModel(t, fed)
	spec := testSpec(t, fed, m, 6, fullSampler{n: 6})
	spec.GroupSize = 3
	backend := NewClusterBackend(ClusterOptions{
		Timeout:      20 * time.Second,
		RoundTimeout: 300 * time.Millisecond,
		NodeFault: func(client, round int) transport.RoundFault {
			if round == 1 && client == 4 {
				// One member of group 1 hangs far past the deadline: the whole
				// group's socket is half-open from the coordinator's view.
				return transport.RoundFault{Delay: 5 * time.Second}
			}
			return transport.RoundFault{}
		},
	})
	res, err := Run(context.Background(), spec, backend)
	if err != nil {
		t.Fatal(err)
	}
	// Group granularity: a round either has the whole fleet or lost exactly
	// group 1 (clients 3,4,5 forfeit together). Round 0 is clean, round 1
	// must have lost the group, and the revived node must be back by the end.
	for _, mrt := range res.History {
		if mrt.Participants != 6 && mrt.Participants != 3 {
			t.Fatalf("round %d had %d participants, want 3 or 6 (group granularity)",
				mrt.Round, mrt.Participants)
		}
		if mrt.Round == 0 && mrt.Participants != 6 {
			t.Fatalf("round 0 had %d participants before any fault", mrt.Participants)
		}
		if mrt.Round == 1 && mrt.Participants != 3 {
			t.Fatalf("round 1 had %d participants, want 3 (group 1 hung)", mrt.Participants)
		}
	}
	if last := res.History[len(res.History)-1]; last.Participants != 6 {
		t.Fatalf("final round had %d participants; group 1 never recovered", last.Participants)
	}
	h := backend.Health()
	for n := 0; n < 3; n++ {
		if h.Misses[n] != 0 {
			t.Fatalf("group 0 member %d ledgered %d misses (%v)", n, h.Misses[n], h.Misses)
		}
	}
	for n := 3; n < 6; n++ {
		if h.Misses[n] == 0 {
			t.Fatalf("group 1 member %d ledgered no miss (%v)", n, h.Misses)
		}
		if h.Respawns[n] == 0 {
			t.Fatalf("group 1 member %d was never respawned: %v", n, h.Respawns)
		}
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}
