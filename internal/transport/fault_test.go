package transport

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// crashingClient follows the protocol for a few rounds, then severs the
// connection mid-run to exercise the coordinator's fault handling.
func crashingClient(t *testing.T, addr string, id, crashAfter int,
	m *model.LogisticRegression, shard *data.Dataset) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Errorf("crashing client %d dial: %v", id, err)
		return
	}
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := Handshake(conn); err != nil {
		t.Errorf("crashing client %d handshake: %v", id, err)
		return
	}
	_ = conn.SetDeadline(time.Time{})
	codec, err := NewCodec(conn, 5*time.Second)
	if err != nil {
		t.Errorf("crashing client %d codec: %v", id, err)
		return
	}
	if err := codec.Send(&Message{Type: MsgHello, ClientID: id}); err != nil {
		t.Errorf("crashing client %d hello: %v", id, err)
		return
	}
	welcome, err := codec.Recv()
	if err != nil || welcome.Type != MsgWelcome {
		t.Errorf("crashing client %d welcome: %v", id, err)
		return
	}
	rng := stats.NewRNG(uint64(id) + 1)
	grad := m.ZeroParams()
	for round := 0; ; round++ {
		msg, err := codec.Recv()
		if err != nil {
			return // server closed us after the crash: expected
		}
		if msg.Type == MsgDone {
			return
		}
		if round >= crashAfter {
			_ = codec.Close() // abrupt death mid-round
			return
		}
		// Participate deterministically so the server sees real updates
		// before the crash.
		w := tensor.Vec(msg.Model).Clone()
		for e := 0; e < welcome.LocalSteps; e++ {
			if err := m.StochasticGradient(w, shard, welcome.BatchSize, rng, grad); err != nil {
				t.Errorf("crashing client %d sgd: %v", id, err)
				return
			}
			if err := w.AddScaled(-msg.LR, grad); err != nil {
				t.Errorf("crashing client %d step: %v", id, err)
				return
			}
		}
		delta, err := tensor.Sub(w, tensor.Vec(msg.Model))
		if err != nil {
			t.Errorf("crashing client %d delta: %v", id, err)
			return
		}
		if err := codec.Send(&Message{
			Type: MsgUpdate, ClientID: id, Round: msg.Round,
			Model: delta, GradSqNorm: 1,
		}); err != nil {
			return
		}
	}
}

func faultFixture(t *testing.T) (*data.Federated, *model.LogisticRegression) {
	t.Helper()
	cfg := data.MNISTLikeConfig()
	cfg.NumClients = 4
	cfg.TotalSamples = 400
	cfg.TestSamples = 80
	cfg.Dim = 6
	cfg.Classes = 3
	cfg.MaxClasses = 2
	fed, err := data.GenerateImageLike(stats.NewRNG(31), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(cfg.Dim, cfg.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return fed, m
}

// TestFaultToleranceSurvivesCrash verifies that with TolerateFaults the
// coordinator finishes a run despite a client dying mid-training, marks the
// client as dropped, and still produces a usable model.
func TestFaultToleranceSurvivesCrash(t *testing.T) {
	fed, m := faultFixture(t)
	const rounds = 20
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 4,
		Q:       []float64{1, 1, 1, 1},
		Weights: fed.Weights,
		Rounds:  rounds, LocalSteps: 3, BatchSize: 8,
		Schedule:       expDecay{Eta0: 0.05, Decay: 0.996},
		Timeout:        5 * time.Second,
		TolerateFaults: true,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var wg sync.WaitGroup
	// Three healthy clients.
	for id := 1; id < 4; id++ {
		client, err := NewClient(ClientConfig{
			Addr: srv.Addr(), ID: id, Seed: uint64(id), Timeout: 5 * time.Second,
		}, m, fed.Clients[id])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Run(context.Background()); err != nil {
				t.Errorf("healthy client: %v", err)
			}
		}()
	}
	// One client that crashes after 5 rounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		crashingClient(t, srv.Addr(), 0, 5, m, fed.Clients[0])
	}()

	result, err := srv.Run(context.Background())
	wg.Wait()
	if err != nil {
		t.Fatalf("server did not tolerate the crash: %v", err)
	}
	if !result.Dropped[0] {
		t.Fatal("crashed client not marked dropped")
	}
	for id := 1; id < 4; id++ {
		if result.Dropped[id] {
			t.Fatalf("healthy client %d marked dropped", id)
		}
		if result.ParticipationCounts[id] != rounds {
			t.Fatalf("healthy client %d joined %d/%d rounds",
				id, result.ParticipationCounts[id], rounds)
		}
	}
	if result.ParticipationCounts[0] == 0 || result.ParticipationCounts[0] >= rounds {
		t.Fatalf("crashed client participation count %d implausible",
			result.ParticipationCounts[0])
	}
	if !result.FinalModel.IsFinite() {
		t.Fatal("final model not finite")
	}
}

// TestFaultIntoleranceAborts verifies the default strict mode: the same
// crash aborts the run with an error.
func TestFaultIntoleranceAborts(t *testing.T) {
	fed, m := faultFixture(t)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2,
		Q:       []float64{1, 1},
		Weights: []float64{fed.Weights[0], 1 - fed.Weights[0]},
		Rounds:  20, LocalSteps: 3, BatchSize: 8,
		Schedule: expDecay{Eta0: 0.05, Decay: 0.996},
		Timeout:  3 * time.Second,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var wg sync.WaitGroup
	client, err := NewClient(ClientConfig{
		Addr: srv.Addr(), ID: 1, Seed: 5, Timeout: 3 * time.Second,
	}, m, fed.Clients[1])
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = client.Run(context.Background()) // will error when the server aborts; ignore
	}()
	go func() {
		defer wg.Done()
		crashingClient(t, srv.Addr(), 0, 2, m, fed.Clients[0])
	}()

	if _, err := srv.Run(context.Background()); err == nil {
		t.Fatal("strict server should abort on client crash")
	}
	_ = srv.Close()
	wg.Wait()
}
