package transport

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
)

// expDecay mirrors fl.ExpDecay for the tests without importing internal/fl
// (which now sits above transport in the layering): η_r = Eta0·Decay^r.
type expDecay struct {
	Eta0  float64
	Decay float64
}

func (s expDecay) LR(round int) float64 { return s.Eta0 * math.Pow(s.Decay, float64(round)) }

func TestCodecRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, err := NewCodec(a, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewCodec(b, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ca.Close(); _ = cb.Close() }()

	want := &Message{
		Type: MsgUpdate, ClientID: 7, Round: 3,
		Model: []float64{1.5, -2.25, 0}, GradSqNorm: 9.5,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ca.Send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if got.Type != want.Type || got.ClientID != 7 || got.Round != 3 ||
		len(got.Model) != 3 || got.Model[1] != -2.25 || got.GradSqNorm != 9.5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := NewCodec(nil, 0); err == nil {
		t.Fatal("expected nil-conn error")
	}
}

func TestServerConfigValidation(t *testing.T) {
	m, err := model.NewLogisticRegression(2, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	good := ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2,
		Q: []float64{0.5, 0.5}, Weights: []float64{0.5, 0.5},
		Rounds: 1, LocalSteps: 1, BatchSize: 1,
		Schedule: expDecay{Eta0: 0.1, Decay: 1},
	}
	srv, err := NewServer(good, m)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()

	cases := map[string]func(*ServerConfig){
		"zero clients": func(c *ServerConfig) { c.NumClients = 0 },
		"q mismatch":   func(c *ServerConfig) { c.Q = c.Q[:1] },
		"w mismatch":   func(c *ServerConfig) { c.Weights = c.Weights[:1] },
		"zero rounds":  func(c *ServerConfig) { c.Rounds = 0 },
		"nil schedule": func(c *ServerConfig) { c.Schedule = nil },
		"bad q":        func(c *ServerConfig) { c.Q = []float64{0, 0.5} },
	}
	for name, mutate := range cases {
		bad := good
		bad.Q = append([]float64(nil), good.Q...)
		bad.Weights = append([]float64(nil), good.Weights...)
		mutate(&bad)
		if _, err := NewServer(bad, m); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := NewServer(good, nil); err == nil {
		t.Fatal("expected nil model error")
	}
}

func TestClientValidation(t *testing.T) {
	m, err := model.NewLogisticRegression(2, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	shard := &data.Dataset{Dim: 2, Classes: 2, X: [][]float64{{1, 1}}, Y: []int{0}}
	if _, err := NewClient(ClientConfig{ID: 0}, nil, shard); err == nil {
		t.Fatal("expected nil model error")
	}
	if _, err := NewClient(ClientConfig{ID: 0}, m, nil); err == nil {
		t.Fatal("expected nil shard error")
	}
	if _, err := NewClient(ClientConfig{ID: -1}, m, shard); err == nil {
		t.Fatal("expected negative id error")
	}
}

// TestEndToEndTCP runs a full 8-client federated training session over real
// localhost TCP sockets, reproducing the paper's prototype topology in
// miniature, and checks the trained model beats the zero model.
func TestEndToEndTCP(t *testing.T) {
	const numClients = 8
	cfg := data.MNISTLikeConfig()
	cfg.NumClients = numClients
	cfg.TotalSamples = 1200
	cfg.TestSamples = 300
	cfg.Dim = 8
	cfg.Classes = 4
	cfg.MaxClasses = 3
	fed, err := data.GenerateImageLike(stats.NewRNG(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(cfg.Dim, cfg.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}

	q := make([]float64, numClients)
	for i := range q {
		q[i] = 0.5 + 0.05*float64(i)
	}
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: numClients,
		Q: q, Weights: fed.Weights,
		Rounds: 25, LocalSteps: 5, BatchSize: 16,
		Schedule: expDecay{Eta0: 0.1, Decay: 0.996},
		Timeout:  10 * time.Second,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var wg sync.WaitGroup
	clientErrs := make([]error, numClients)
	participations := make([]int, numClients)
	for id := 0; id < numClients; id++ {
		id := id
		client, err := NewClient(ClientConfig{
			Addr: srv.Addr(), ID: id, Seed: uint64(100 + id),
			Timeout: 10 * time.Second,
		}, m, fed.Clients[id])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			participations[id], clientErrs[id] = client.Run(context.Background())
		}()
	}

	result, err := srv.Run(context.Background())
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for id, cerr := range clientErrs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}

	// Server's participation tally must match the clients' own counts.
	for id := range participations {
		if participations[id] != result.ParticipationCounts[id] {
			t.Fatalf("client %d: participation mismatch %d vs %d",
				id, participations[id], result.ParticipationCounts[id])
		}
	}
	// The trained model must beat the zero model on the pooled objective.
	zeroLoss, err := m.Loss(m.ZeroParams(), fed.Train)
	if err != nil {
		t.Fatal(err)
	}
	finalLoss, err := m.Loss(result.FinalModel, fed.Train)
	if err != nil {
		t.Fatal(err)
	}
	if finalLoss >= zeroLoss {
		t.Fatalf("TCP training did not improve loss: %v >= %v", finalLoss, zeroLoss)
	}
	// Gradient statistics must have flowed back for participating clients.
	for id, g := range result.GradSqNorm {
		if result.ParticipationCounts[id] > 0 && g <= 0 {
			t.Fatalf("client %d participated but reported no gradient stats", id)
		}
	}
}

// TestTCPParticipationRates checks that over many rounds the observed
// participation frequencies track the assigned q.
func TestTCPParticipationRates(t *testing.T) {
	const numClients = 3
	shardCfg := data.MNISTLikeConfig()
	shardCfg.NumClients = numClients
	shardCfg.TotalSamples = 300
	shardCfg.TestSamples = 50
	shardCfg.Dim = 4
	shardCfg.Classes = 2
	shardCfg.MaxClasses = 2
	fed, err := data.GenerateImageLike(stats.NewRNG(21), shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(shardCfg.Dim, shardCfg.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.2, 0.6, 1.0}
	const rounds = 120
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: numClients,
		Q: q, Weights: fed.Weights,
		Rounds: rounds, LocalSteps: 1, BatchSize: 8,
		Schedule: expDecay{Eta0: 0.05, Decay: 1},
		Timeout:  10 * time.Second,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		client, err := NewClient(ClientConfig{
			Addr: srv.Addr(), ID: id, Seed: uint64(7 + id), Timeout: 10 * time.Second,
		}, m, fed.Clients[id])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Run(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	result, err := srv.Run(context.Background())
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if result.ParticipationCounts[2] != rounds {
		t.Fatalf("q=1 client joined %d/%d rounds", result.ParticipationCounts[2], rounds)
	}
	rate0 := float64(result.ParticipationCounts[0]) / rounds
	if rate0 < 0.05 || rate0 > 0.4 {
		t.Fatalf("q=0.2 client rate %v far from target", rate0)
	}
}
