package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"unbiasedfl/internal/stats"
)

// TestDialRetryOutwaitsLateListener: a coordinator that starts listening
// after the first attempts fail must still be reached within the retry
// budget.
func TestDialRetryOutwaitsLateListener(t *testing.T) {
	// Reserve an address, then close it so the first dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	ready := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Error(err)
			close(ready)
			return
		}
		close(ready)
		conn, err := ln2.Accept()
		if err == nil {
			_ = Handshake(conn)
			_ = conn.Close()
		}
		_ = ln2.Close()
	}()

	conn, err := DialRetry(context.Background(), addr,
		RetryPolicy{Attempts: 20, Base: 20 * time.Millisecond, Max: 100 * time.Millisecond},
		stats.NewRNG(1))
	if err != nil {
		t.Fatalf("retry did not outwait the late listener: %v", err)
	}
	_ = conn.Close()
	<-ready
}

// TestDialRetryDoesNotRetryFatal: a peer that answers the handshake with a
// wrong version (or alien magic) must abort the dial immediately — retrying
// can never fix a protocol mismatch.
func TestDialRetryDoesNotRetryFatal(t *testing.T) {
	for _, tc := range []struct {
		name    string
		preable [5]byte
		want    error
	}{
		{"version-mismatch", [5]byte{'U', 'F', 'L', 0, ProtocolVersion + 1}, ErrVersionMismatch},
		{"bad-magic", [5]byte{'X', 'X', 'X', 'X', ProtocolVersion}, ErrBadMagic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = ln.Close() }()
			accepts := make(chan struct{}, 16)
			go func() {
				for {
					conn, err := ln.Accept()
					if err != nil {
						return
					}
					accepts <- struct{}{}
					_, _ = conn.Write(tc.preable[:])
					// Drain the peer's preamble, then hang up.
					buf := make([]byte, 5)
					_, _ = conn.Read(buf)
					_ = conn.Close()
				}
			}()

			_, err = DialRetry(context.Background(), ln.Addr().String(),
				RetryPolicy{Attempts: 10, Base: 5 * time.Millisecond}, nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if got := len(accepts); got != 1 {
				t.Fatalf("fatal handshake error was retried: %d dial attempts", got)
			}
		})
	}
}

// TestDialRetryHonorsCancellation: cancelling mid-backoff returns promptly
// with ctx.Err().
func TestDialRetryHonorsCancellation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // every dial will be refused

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = DialRetry(ctx, addr, RetryPolicy{Attempts: 1000, Base: 10 * time.Millisecond, Max: time.Hour}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to land", elapsed)
	}
}

// TestDialRetryReportsLastError: exhausting the budget must surface the
// underlying cause, not a bare count.
func TestDialRetryReportsLastError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	_, err = DialRetry(context.Background(), addr, RetryPolicy{Attempts: 2, Base: time.Millisecond}, nil)
	if err == nil {
		t.Fatal("dial to a closed address succeeded")
	}
}
