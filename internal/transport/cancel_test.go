package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
)

// cancelFixture is a tiny federation + model for the cancellation tests.
type cancelFixture struct {
	fed   *data.Federated
	model *model.LogisticRegression
}

func buildCancelFixture(t *testing.T, clients int) cancelFixture {
	t.Helper()
	cfg := data.MNISTLikeConfig()
	cfg.NumClients = clients
	cfg.TotalSamples = 200
	cfg.TestSamples = 60
	cfg.Dim = 6
	cfg.Classes = 3
	cfg.MaxClasses = 2
	fed, err := data.GenerateImageLike(stats.NewRNG(23), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(cfg.Dim, cfg.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return cancelFixture{fed: fed, model: m}
}

// silentServer accepts one connection and never replies — the dead-peer
// scenario the context watcher exists for.
func silentServer(t *testing.T) (addr string, cleanup func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var conn net.Conn
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conn = c
		// Hold the connection open without ever reading or writing.
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		<-done
		if conn != nil {
			_ = conn.Close()
		}
	}
}

// TestClientCancelUnblocksRead proves the satellite requirement: a client
// blocked reading from a dead peer returns ctx.Err() promptly on
// cancellation instead of hanging forever. It runs both without a protocol
// timeout (ctx is the only bound) and with a long one (the per-operation
// deadline reset must not erase the cancellation — a close is sticky, a
// deadline slam would not be).
func TestClientCancelUnblocksRead(t *testing.T) {
	for name, timeout := range map[string]time.Duration{
		"no-timeout":   0,
		"long-timeout": 2 * time.Minute,
	} {
		t.Run(name, func(t *testing.T) {
			addr, cleanup := silentServer(t)
			defer cleanup()

			fx := buildCancelFixture(t, 2)
			client, err := NewClient(ClientConfig{
				Addr: addr, ID: 0, Seed: 1, Timeout: timeout,
			}, fx.model, fx.fed.Clients[0])
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			errCh := make(chan error, 1)
			go func() {
				_, err := client.Run(ctx)
				errCh <- err
			}()
			time.Sleep(50 * time.Millisecond) // let the client block in Recv
			cancel()
			select {
			case err := <-errCh:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("want context.Canceled, got %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("client did not unblock after cancellation")
			}
		})
	}
}

// TestClientDialHonorsContext covers the dial path: a cancelled context
// aborts the dial immediately with ctx.Err(), without touching the network.
func TestClientDialHonorsContext(t *testing.T) {
	addr, cleanup := silentServer(t)
	defer cleanup()

	fx := buildCancelFixture(t, 2)
	client, err := NewClient(ClientConfig{
		Addr: addr, ID: 0, Seed: 1,
	}, fx.model, fx.fed.Clients[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the dial starts
	start := time.Now()
	_, err = client.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dial cancellation took %v", elapsed)
	}
}

// TestServerCancelUnblocksAccept proves a coordinator waiting for a fleet
// that never arrives can be shut down via its context.
func TestServerCancelUnblocksAccept(t *testing.T) {
	fx := buildCancelFixture(t, 2)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2,
		Q: []float64{0.5, 0.5}, Weights: fx.fed.Weights,
		Rounds: 5, LocalSteps: 2, BatchSize: 8,
		Schedule: expDecay{Eta0: 0.1, Decay: 0.996},
	}, fx.model)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the server block in Accept
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not unblock after cancellation")
	}
}
