package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"unbiasedfl/internal/model"
	"unbiasedfl/internal/testutil"
)

// handshakeServer builds a 1-client server with a short handshake window and
// no per-operation timeout — the configuration in which a half-open peer
// used to pin the accept loop forever.
func handshakeServer(t *testing.T, hsTimeout time.Duration) *Server {
	t.Helper()
	m, err := model.NewLogisticRegression(2, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1,
		Q: []float64{1}, Weights: []float64{1},
		Rounds: 1, LocalSteps: 1, BatchSize: 1,
		Schedule:         expDecay{Eta0: 0.1, Decay: 1},
		HandshakeTimeout: hsTimeout,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestServerHandshakeDeadlineFreesAcceptLoop is the regression test for the
// half-open-hello leak: a peer that connects but never completes the
// handshake must not strand Server.Run (and its caller's goroutine) beyond
// the handshake window, even with no round timeout configured.
func TestServerHandshakeDeadlineFreesAcceptLoop(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	srv := handshakeServer(t, 200*time.Millisecond)
	defer func() { _ = srv.Close() }()

	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()

	// Connect and go silent: no magic, no hello.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server accepted a peer that never completed the handshake")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server still waiting on a half-open handshake after 5s")
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestServerHandshakeDeadlineCoversHello extends the regression to the next
// phase: a peer that handshakes but never sends its hello is likewise cut
// off at the handshake deadline, not the round timeout.
func TestServerHandshakeDeadlineCoversHello(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	srv := handshakeServer(t, 200*time.Millisecond)
	defer func() { _ = srv.Close() }()

	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(3 * time.Second))
	if err := Handshake(conn); err != nil {
		t.Fatal(err)
	}
	// ... and never send the hello.

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server accepted a peer that never sent its hello")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server still waiting on a hello-less peer after 5s")
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestHandshakeVersionMismatch pins the clear-error requirement: a peer
// speaking a different protocol version is rejected with ErrVersionMismatch.
func TestHandshakeVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = conn.Close() }()
		_ = conn.SetDeadline(time.Now().Add(3 * time.Second))
		done <- Handshake(conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// A future build: right magic, wrong version.
	preamble := append(append([]byte(nil), handshakeMagic[:]...), ProtocolVersion+1)
	if _, err := conn.Write(preamble); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("want ErrVersionMismatch, got %v", err)
	}
}

// TestHandshakeRejectsAlienPeer: a peer that is not speaking the protocol at
// all fails with ErrBadMagic, not a confusing decode error downstream.
func TestHandshakeRejectsAlienPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = conn.Close() }()
		_ = conn.SetDeadline(time.Now().Add(3 * time.Second))
		done <- Handshake(conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder: it must never
// panic, never allocate beyond MaxFrameSize, and any frame it accepts must
// round-trip bit-exactly through WriteFrame.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: a valid small frame, an empty frame, a truncated frame,
	// and a hostile length prefix.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, []byte("hello, federation")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	_ = WriteFrame(&empty, nil)
	f.Add(empty.Bytes())
	f.Add([]byte{0, 0, 0, 9, 'x'})              // declares 9 bytes, ships 1
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0}) // 4 GiB length prefix
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrameSize+1))

	f.Fuzz(func(t *testing.T, b []byte) {
		payload, err := DecodeFrame(bytes.NewReader(b), nil)
		if err != nil {
			return
		}
		if len(payload) > MaxFrameSize {
			t.Fatalf("decoder accepted an oversized frame: %d bytes", len(payload))
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		reread, err := DecodeFrame(&out, nil)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !bytes.Equal(payload, reread) {
			t.Fatal("frame payload does not round-trip")
		}
	})
}

// TestDecodeFrameReusesBuffer pins the zero-copy contract the codec's frame
// reader depends on: a large-enough scratch buffer is reused, not replaced.
func TestDecodeFrameReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 16)
	payload, err := DecodeFrame(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &payload[0] != &scratch[0] {
		t.Fatal("decoder abandoned a large-enough scratch buffer")
	}
	if _, err := DecodeFrame(bytes.NewReader(nil), nil); !errors.Is(err, io.EOF) {
		t.Fatalf("empty input: want io.EOF, got %v", err)
	}
}

// TestVersionMismatchNamesBothVersions pins the diagnosability requirement
// for mixed-version clusters: the ErrVersionMismatch text carries BOTH the
// peer's version and this build's, so one log line identifies which side of
// a skewed fleet is stale.
func TestVersionMismatchNamesBothVersions(t *testing.T) {
	local, peer := net.Pipe()
	defer func() { _ = local.Close() }()
	defer func() { _ = peer.Close() }()
	go func() {
		defer func() { _ = peer.Close() }()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(peer, buf); err != nil {
			return
		}
		out := append(append([]byte(nil), handshakeMagic[:]...), ProtocolVersion+1)
		_, _ = peer.Write(out)
	}()
	err := Handshake(local)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("want ErrVersionMismatch, got %v", err)
	}
	for _, want := range []string{
		fmt.Sprintf("peer speaks version %d", ProtocolVersion+1),
		fmt.Sprintf("this build speaks %d", ProtocolVersion),
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}
