package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"unbiasedfl/internal/fixpoint"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/tensor"
)

// Schedule produces the learning rate for a given round. It is satisfied by
// the schedules in internal/fl (ExpDecay, TheoremDecay); transport declares
// its own seam so the wire layer stays below the orchestration layers.
type Schedule interface {
	LR(round int) float64
}

// DefaultHandshakeTimeout bounds the per-connection hello phase when
// ServerConfig.HandshakeTimeout is zero.
const DefaultHandshakeTimeout = 10 * time.Second

// ServerConfig configures the coordinator.
type ServerConfig struct {
	// Addr to listen on, e.g. "127.0.0.1:0" (port 0 picks a free port).
	Addr string
	// NumClients to wait for before training starts.
	NumClients int
	// Q holds the per-client participation levels handed out at welcome.
	Q []float64
	// Rounds, LocalSteps, BatchSize mirror fl.Config.
	Rounds     int
	LocalSteps int
	BatchSize  int
	// Schedule provides per-round learning rates.
	Schedule Schedule
	// Weights are the data weights a_n used in the unbiased aggregation.
	Weights []float64
	// Timeout bounds every socket operation.
	Timeout time.Duration
	// HandshakeTimeout bounds the version handshake plus hello for each
	// accepted connection (0 = DefaultHandshakeTimeout). Without it a peer
	// that connects but never completes the hello would pin the accept loop
	// for the full round Timeout — or forever when Timeout is zero.
	HandshakeTimeout time.Duration
	// TolerateFaults makes the coordinator treat a client that errors or
	// times out mid-round as a skip for that and all later rounds, instead
	// of aborting the whole run. This mirrors the paper's observation that
	// clients are "only intermittently available due to their usage
	// patterns": a crashed device must not strand the federation. The
	// unbiased estimator stays correct in expectation for the rounds the
	// client was reachable.
	TolerateFaults bool
}

func (c *ServerConfig) validate() error {
	switch {
	case c.NumClients <= 0:
		return errors.New("transport: need at least one client")
	case len(c.Q) != c.NumClients:
		return errors.New("transport: q length mismatch")
	case len(c.Weights) != c.NumClients:
		return errors.New("transport: weights length mismatch")
	case c.Rounds <= 0 || c.LocalSteps <= 0 || c.BatchSize <= 0:
		return errors.New("transport: invalid round/step/batch configuration")
	case c.Schedule == nil:
		return errors.New("transport: nil schedule")
	}
	for n, qn := range c.Q {
		if qn <= 0 || qn > 1 {
			return fmt.Errorf("transport: q[%d] = %v outside (0,1]", n, qn)
		}
	}
	return nil
}

func (c *ServerConfig) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return DefaultHandshakeTimeout
}

// ServerResult is the coordinator's view of a finished run.
type ServerResult struct {
	FinalModel tensor.Vec
	// GradSqNorm holds the clients' self-reported mean squared gradient
	// norms (the paper's G_n estimation channel).
	GradSqNorm []float64
	// ParticipationCounts tallies how often each client joined.
	ParticipationCounts []int
	// Dropped marks clients lost mid-run (only with TolerateFaults).
	Dropped []bool
	// Left marks clients that departed gracefully via MsgLeave. Unlike a
	// drop, a leave is an observed, acknowledged event — it is not an error
	// even without TolerateFaults.
	Left []bool
}

// Server coordinates FL over real TCP sockets: it waits for NumClients
// hellos, then drives Rounds rounds of broadcast → collect → unbiased
// aggregate.
type Server struct {
	cfg      ServerConfig
	model    model.Model
	listener net.Listener
}

// NewServer validates the configuration and binds the listener immediately
// so callers can learn the address before any client dials.
func NewServer(cfg ServerConfig, m model.Model) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, errors.New("transport: nil model")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &Server{cfg: cfg, model: m, listener: ln}, nil
}

// registerClient runs one accepted connection through the version handshake
// and hello exchange under the handshake deadline, and replies with the
// welcome. It never closes conn; the caller owns it on error.
func (s *Server) registerClient(conn net.Conn, codecs []*Codec) (int, *Codec, error) {
	hsDeadline := time.Now().Add(s.cfg.handshakeTimeout())
	if err := conn.SetDeadline(hsDeadline); err != nil {
		return 0, nil, fmt.Errorf("transport: set handshake deadline: %w", err)
	}
	if err := Handshake(conn); err != nil {
		return 0, nil, err
	}
	codec, err := NewCodec(conn, s.cfg.Timeout)
	if err != nil {
		return 0, nil, err
	}
	hello, err := codec.RecvDeadline(hsDeadline)
	if err != nil {
		return 0, nil, fmt.Errorf("transport: hello: %w", err)
	}
	// The hello phase is over; hand deadline control back to the codec's
	// per-operation timeout (sticky deadlines would otherwise outlive the
	// handshake when Timeout is zero).
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return 0, nil, fmt.Errorf("transport: clear handshake deadline: %w", err)
	}
	if hello.Type != MsgHello && hello.Type != MsgJoin {
		return 0, nil, fmt.Errorf("transport: expected hello or join, got %v", hello.Type)
	}
	id := hello.ClientID
	if id < 0 || id >= s.cfg.NumClients {
		return 0, nil, fmt.Errorf("transport: client id %d out of range", id)
	}
	if codecs[id] != nil {
		return 0, nil, fmt.Errorf("transport: duplicate client id %d", id)
	}
	if err := codec.Send(&Message{
		Type:       MsgWelcome,
		ClientID:   id,
		Q:          s.cfg.Q[id],
		LocalSteps: s.cfg.LocalSteps,
		BatchSize:  s.cfg.BatchSize,
		Rounds:     s.cfg.Rounds,
	}); err != nil {
		return 0, nil, err
	}
	return id, codec, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close releases the listener.
func (s *Server) Close() error { return s.listener.Close() }

// Run accepts clients, runs the training protocol to completion, and
// returns the final global model. It closes all client connections before
// returning. Cancelling ctx unblocks a pending accept and every pending
// socket read/write, and Run returns ctx.Err() promptly.
func (s *Server) Run(ctx context.Context) (*ServerResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	codecs := make([]*Codec, s.cfg.NumClients)
	defer func() {
		for _, c := range codecs {
			if c != nil {
				_ = c.Close()
			}
		}
	}()

	// On cancellation, close the listener (unblocking Accept) and every
	// connection accepted so far (unblocking gob reads — a deadline slam
	// would be erased by the Codec's per-operation deadline resets, a close
	// is sticky).
	var connMu sync.Mutex
	var conns []net.Conn
	if ctx.Done() != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				_ = s.listener.Close()
				connMu.Lock()
				for _, c := range conns {
					_ = c.Close()
				}
				connMu.Unlock()
			case <-watchDone:
			}
		}()
	}
	// ctxify maps errors surfaced by the cancellation watcher back to the
	// context's error.
	ctxify := func(err error) error {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return err
	}

	// Accept and identify every client. The whole per-connection hello phase
	// runs under a dedicated handshake deadline: a peer that connects but
	// never sends its preamble or hello cannot pin the accept loop beyond
	// it. A connection whose hello phase fails is closed before Run returns
	// (the deferred sweep only covers registered codecs).
	for i := 0; i < s.cfg.NumClients; i++ {
		conn, err := s.listener.Accept()
		if err != nil {
			return nil, ctxify(fmt.Errorf("transport: accept: %w", err))
		}
		connMu.Lock()
		conns = append(conns, conn)
		if ctx.Err() != nil {
			_ = conn.Close() // raced past the watcher's sweep
		}
		connMu.Unlock()
		id, codec, err := s.registerClient(conn, codecs)
		if err != nil {
			_ = conn.Close()
			return nil, ctxify(err)
		}
		codecs[id] = codec
	}

	global := s.model.ZeroParams()
	acc := fixpoint.New(len(global))
	result := &ServerResult{
		GradSqNorm:          make([]float64, s.cfg.NumClients),
		ParticipationCounts: make([]int, s.cfg.NumClients),
		Dropped:             make([]bool, s.cfg.NumClients),
		Left:                make([]bool, s.cfg.NumClients),
	}
	for round := 0; round < s.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lr := s.cfg.Schedule.LR(round)
		start := &Message{Type: MsgRoundStart, Round: round, Model: global, LR: lr}
		// Broadcast concurrently; collect replies concurrently.
		var wg sync.WaitGroup
		replies := make([]*Message, s.cfg.NumClients)
		errs := make([]error, s.cfg.NumClients)
		for id, codec := range codecs {
			id, codec := id, codec
			if result.Dropped[id] || result.Left[id] {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := codec.Send(start); err != nil {
					errs[id] = err
					return
				}
				reply, err := codec.Recv()
				if err != nil {
					errs[id] = err
					return
				}
				replies[id] = reply
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for id, err := range errs {
			if err == nil {
				continue
			}
			if !s.cfg.TolerateFaults {
				return nil, fmt.Errorf("transport: round %d client %d: %w", round, id, err)
			}
			result.Dropped[id] = true
			_ = codecs[id].Close()
		}

		// Unbiased aggregation (Lemma 1) — the same arithmetic as
		// engine.UnbiasedAggregator: w += Σ (a_n/q_n) Δ_n, folded through the
		// canonical fixed-point accumulator so the prototype's sum is
		// bit-identical to the engine's regardless of fold order.
		acc.Reset()
		for id, reply := range replies {
			if reply == nil {
				continue // dropped this round or earlier
			}
			switch reply.Type {
			case MsgUpdate:
				if len(reply.Model) != len(global) {
					return nil, fmt.Errorf("transport: client %d delta length %d", id, len(reply.Model))
				}
				if err := acc.AddScaled(s.cfg.Weights[id]/s.cfg.Q[id], tensor.Vec(reply.Model)); err != nil {
					return nil, fmt.Errorf("transport: round %d aggregate: %w", round, err)
				}
				result.ParticipationCounts[id]++
				result.GradSqNorm[id] = reply.GradSqNorm
			case MsgSkip:
				result.GradSqNorm[id] = math.Max(result.GradSqNorm[id], reply.GradSqNorm)
			case MsgLeave:
				// Graceful departure: farewell the device and release its
				// connection. Observed and acknowledged, so never an error.
				result.Left[id] = true
				_ = codecs[id].Send(&Message{Type: MsgBye, ClientID: id})
				_ = codecs[id].Close()
			default:
				return nil, fmt.Errorf("transport: unexpected reply %v from client %d", reply.Type, id)
			}
		}
		if err := acc.AddTo(global); err != nil {
			return nil, fmt.Errorf("transport: round %d aggregate: %w", round, err)
		}
	}

	done := &Message{Type: MsgDone}
	for id, codec := range codecs {
		if result.Dropped[id] || result.Left[id] {
			continue
		}
		if err := codec.Send(done); err != nil {
			if !s.cfg.TolerateFaults {
				return nil, fmt.Errorf("transport: done to client %d: %w", id, err)
			}
			result.Dropped[id] = true
		}
	}
	result.FinalModel = global
	return result, nil
}
