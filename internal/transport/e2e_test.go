// The end-to-end wire-vs-in-process identity test lives in an external test
// package: it drives the in-process fl.Runner as its reference, and fl now
// sits above transport in the layering (fl → engine → transport), so an
// in-package import would be a cycle.
package transport_test

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/testutil"
	"unbiasedfl/internal/transport"
)

// genericOnly hides a model's optional fast-path interfaces (LocalStepper),
// forcing the in-process runner down the same StochasticGradient + AddScaled
// arithmetic the TCP client executes — the precondition for byte-level
// equality between the two substrates.
type genericOnly struct{ model.Model }

// TestEndToEndTCPMatchesInProcessRunner runs a full multi-client FL round
// sequence twice — once over real TCP loopback (server + 3 client
// goroutines) and once through the in-process fl.Runner — with aligned
// randomness, and requires the final global models to be byte-identical.
// The alignment: full participation on both sides, and each TCP client's
// SGD stream injected as the n-th Split of the run seed, exactly how the
// runner derives its per-client streams.
func TestEndToEndTCPMatchesInProcessRunner(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	const (
		numClients = 3
		rounds     = 5
		localSteps = 3
		batchSize  = 8
		runSeed    = 424242
	)
	cfg := data.MNISTLikeConfig()
	cfg.NumClients = numClients
	cfg.TotalSamples = 300
	cfg.TestSamples = 60
	cfg.Dim = 6
	cfg.Classes = 3
	cfg.MaxClasses = 2
	fed, err := data.GenerateImageLike(stats.NewRNG(99), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := model.NewLogisticRegression(cfg.Dim, cfg.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m := genericOnly{lr}
	schedule := fl.ExpDecay{Eta0: 0.05, Decay: 0.996}
	q := []float64{1, 1, 1}

	// In-process reference run.
	full, err := fl.NewFullSampler(numClients)
	if err != nil {
		t.Fatal(err)
	}
	runner := &fl.Runner{
		Model: m,
		Fed:   fed,
		Config: fl.Config{
			Rounds:     rounds,
			LocalSteps: localSteps,
			BatchSize:  batchSize,
			Schedule:   schedule,
			EvalEvery:  rounds,
			Seed:       runSeed,
		},
		Sampler:    full,
		Aggregator: fl.UnbiasedAggregator{},
	}
	ref, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}

	// TCP run: same arithmetic, real sockets.
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: numClients,
		Q:          q,
		Weights:    fed.Weights,
		Rounds:     rounds,
		LocalSteps: localSteps,
		BatchSize:  batchSize,
		Schedule:   schedule,
		Timeout:    20 * time.Second,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	// The runner derives client n's SGD stream as the n-th Split of the run
	// seed; hand each TCP client exactly that stream.
	root := stats.NewRNG(runSeed)
	var wg sync.WaitGroup
	clientErrs := make([]error, numClients)
	for n := 0; n < numClients; n++ {
		node, err := transport.NewClient(transport.ClientConfig{
			Addr:    srv.Addr(),
			ID:      n,
			Seed:    1000 + uint64(n), // participation coins only; q=1 joins always
			Timeout: 20 * time.Second,
			SGDRNG:  root.Split(),
		}, m, fed.Clients[n])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(n int, node *transport.Client) {
			defer wg.Done()
			_, clientErrs[n] = node.Run(context.Background())
		}(n, node)
	}
	res, err := srv.Run(context.Background())
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for n, cerr := range clientErrs {
		if cerr != nil {
			t.Fatalf("client %d: %v", n, cerr)
		}
	}

	if len(res.FinalModel) != len(ref.FinalModel) {
		t.Fatalf("model length %d over TCP, %d in-process", len(res.FinalModel), len(ref.FinalModel))
	}
	for j := range res.FinalModel {
		tcpBits := math.Float64bits(res.FinalModel[j])
		refBits := math.Float64bits(ref.FinalModel[j])
		if tcpBits != refBits {
			t.Fatalf("model[%d]: TCP %x (%v) vs in-process %x (%v) — the wire changed the arithmetic",
				j, tcpBits, res.FinalModel[j], refBits, ref.FinalModel[j])
		}
	}
	// The self-reported gradient statistics must agree bit-for-bit too:
	// both sides run the same Welford accumulation over the same stream.
	for n := range res.GradSqNorm {
		if math.Float64bits(res.GradSqNorm[n]) != math.Float64bits(ref.GradSqNorm[n]) {
			t.Fatalf("client %d GradSqNorm: TCP %v vs in-process %v",
				n, res.GradSqNorm[n], ref.GradSqNorm[n])
		}
	}
	for n, cnt := range res.ParticipationCounts {
		if cnt != rounds {
			t.Fatalf("client %d participated %d/%d rounds under q=1", n, cnt, rounds)
		}
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}
