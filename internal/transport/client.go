package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// ClientConfig configures one device node.
type ClientConfig struct {
	Addr    string // server address to dial
	ID      int    // client identity, also its index in the server's tables
	Seed    uint64 // private randomness for participation and SGD
	Timeout time.Duration
}

// Client is one device in the prototype: it owns a local shard, dials the
// coordinator, and on every round independently decides with probability q
// whether to participate; when it does, it runs E local SGD steps and ships
// the delta back.
type Client struct {
	cfg   ClientConfig
	model model.Model
	shard *data.Dataset
}

// NewClient validates inputs and constructs the node.
func NewClient(cfg ClientConfig, m model.Model, shard *data.Dataset) (*Client, error) {
	if m == nil {
		return nil, errors.New("transport: nil model")
	}
	if shard == nil || shard.Len() == 0 {
		return nil, errors.New("transport: nil or empty shard")
	}
	if cfg.ID < 0 {
		return nil, errors.New("transport: negative client id")
	}
	return &Client{cfg: cfg, model: m, shard: shard}, nil
}

// Run dials the server and executes the protocol until MsgDone. It returns
// the number of rounds in which this client participated. The context
// bounds the dial and every request/response read: cancellation (or a
// deadline) unblocks a read pending on a dead or silent peer and Run
// returns ctx.Err() promptly.
func (c *Client) Run(ctx context.Context) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", c.cfg.Addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, ctxErr
		}
		return 0, fmt.Errorf("transport: dial: %w", err)
	}
	codec, err := NewCodec(conn, c.cfg.Timeout)
	if err != nil {
		_ = conn.Close()
		return 0, err
	}
	defer func() { _ = codec.Close() }()
	stop := watchCancel(ctx, conn)
	defer stop()
	// ctxify maps errors surfaced by a cancellation-slammed deadline back
	// to the context's error, so callers see ctx.Err() rather than a
	// net timeout.
	ctxify := func(err error) error {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return err
	}

	if err := codec.Send(&Message{Type: MsgHello, ClientID: c.cfg.ID}); err != nil {
		return 0, ctxify(err)
	}
	welcome, err := codec.Recv()
	if err != nil {
		return 0, ctxify(err)
	}
	if welcome.Type != MsgWelcome {
		return 0, fmt.Errorf("transport: expected welcome, got %v", welcome.Type)
	}
	q := welcome.Q
	localSteps := welcome.LocalSteps
	batch := welcome.BatchSize
	if q <= 0 || q > 1 || localSteps <= 0 || batch <= 0 {
		return 0, errors.New("transport: invalid welcome parameters")
	}

	rng := stats.NewRNG(c.cfg.Seed)
	grad := c.model.ZeroParams()
	var gradStats stats.Welford
	participated := 0
	for {
		// Proactive check: cancellation that lands while this client is
		// busy computing (between socket operations) must not be outrun by
		// the next successful Recv.
		if err := ctx.Err(); err != nil {
			return participated, err
		}
		msg, err := codec.Recv()
		if err != nil {
			return participated, ctxify(err)
		}
		switch msg.Type {
		case MsgDone:
			return participated, nil
		case MsgRoundStart:
			// The client decides participation on its own — the essence of
			// the paper's randomized independent participation.
			if !rng.Bernoulli(q) {
				if err := codec.Send(&Message{
					Type: MsgSkip, ClientID: c.cfg.ID, Round: msg.Round,
					GradSqNorm: gradStats.Mean(),
				}); err != nil {
					return participated, ctxify(err)
				}
				continue
			}
			w := tensor.Vec(msg.Model).Clone()
			for e := 0; e < localSteps; e++ {
				if err := c.model.StochasticGradient(w, c.shard, batch, rng, grad); err != nil {
					return participated, err
				}
				gradStats.Add(grad.SqNorm())
				if err := w.AddScaled(-msg.LR, grad); err != nil {
					return participated, err
				}
			}
			delta, err := tensor.Sub(w, tensor.Vec(msg.Model))
			if err != nil {
				return participated, err
			}
			participated++
			if err := codec.Send(&Message{
				Type: MsgUpdate, ClientID: c.cfg.ID, Round: msg.Round,
				Model: delta, GradSqNorm: gradStats.Mean(),
			}); err != nil {
				return participated, ctxify(err)
			}
		default:
			return participated, fmt.Errorf("transport: unexpected message %v", msg.Type)
		}
	}
}
