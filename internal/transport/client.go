package transport

import (
	"context"
	"errors"
	"fmt"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/tensor"
)

// RoundFault describes a fault injected into one round of a client's run —
// the socket-layer counterpart of a scenario fault schedule. The zero value
// is a healthy round.
type RoundFault struct {
	// Delay stalls the client before it acts on the round (a straggler).
	Delay time.Duration
	// Skip makes the client report MsgSkip regardless of its participation
	// coin (an exogenously unavailable device).
	Skip bool
	// Crash severs the connection before replying; Run returns
	// ErrInjectedCrash.
	Crash bool
}

// ErrInjectedCrash is returned by Client.Run when a FaultFunc ordered the
// connection severed mid-round. Harnesses treat it as the expected outcome
// of a scheduled dropout rather than a failure.
var ErrInjectedCrash = errors.New("transport: injected crash")

// ClientConfig configures one device node.
type ClientConfig struct {
	Addr    string // server address to dial
	ID      int    // client identity, also its index in the server's tables
	Seed    uint64 // private randomness for participation and SGD
	Timeout time.Duration
	// FaultFunc, when non-nil, is consulted at every round start with the
	// announced round number and may inject a straggler delay, a forced
	// skip, or a mid-round crash. It runs on the client goroutine.
	FaultFunc func(round int) RoundFault
	// Retry tunes the dial: Run dials through DialRetry, so a device can
	// outwait a coordinator that is still booting (or rebooting). The zero
	// value keeps the historical single-shot dial. Fatal handshake errors
	// never retry.
	Retry RetryPolicy
	// SGDRNG, when non-nil, supplies the stochastic-gradient randomness as
	// a stream separate from the participation coins (which stay derived
	// from Seed). This is the seam the byte-identity tests use to align a
	// TCP client's arithmetic with the in-process runner's per-client
	// streams. Nil keeps the historical behaviour: one Seed-derived stream
	// for both.
	SGDRNG *stats.RNG
	// Join makes the device introduce itself with MsgJoin (protocol v4)
	// instead of MsgHello — a prospective member asking to be admitted. The
	// prototype server treats both identically; a membership-aware
	// coordinator withholds the welcome until the next epoch boundary.
	Join bool
	// LeaveAfter, when positive, makes the device depart gracefully: on the
	// first round start with Round >= LeaveAfter it sends MsgLeave, waits
	// for the coordinator's MsgBye, and exits cleanly. Zero disables.
	LeaveAfter int
}

// Client is one device in the prototype: it owns a local shard, dials the
// coordinator, and on every round independently decides with probability q
// whether to participate; when it does, it runs E local SGD steps and ships
// the delta back.
type Client struct {
	cfg   ClientConfig
	model model.Model
	shard *data.Dataset
}

// NewClient validates inputs and constructs the node.
func NewClient(cfg ClientConfig, m model.Model, shard *data.Dataset) (*Client, error) {
	if m == nil {
		return nil, errors.New("transport: nil model")
	}
	if shard == nil || shard.Len() == 0 {
		return nil, errors.New("transport: nil or empty shard")
	}
	if cfg.ID < 0 {
		return nil, errors.New("transport: negative client id")
	}
	return &Client{cfg: cfg, model: m, shard: shard}, nil
}

// Run dials the server and executes the protocol until MsgDone. It returns
// the number of rounds in which this client participated. The context
// bounds the dial and every request/response read: cancellation (or a
// deadline) unblocks a read pending on a dead or silent peer and Run
// returns ctx.Err() promptly.
func (c *Client) Run(ctx context.Context) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	policy := c.cfg.Retry
	if policy.HandshakeTimeout <= 0 && c.cfg.Timeout > 0 {
		policy.HandshakeTimeout = c.cfg.Timeout
	}
	// The jitter stream is salted so it never touches the participation
	// coins derived from the same seed.
	conn, err := DialRetry(ctx, c.cfg.Addr, policy, stats.NewRNG(c.cfg.Seed^0xC3D2E1F0C3D2E1F0))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, ctxErr
		}
		return 0, err
	}
	stop := watchCancel(ctx, conn)
	defer stop()
	// ctxify maps errors surfaced by a cancellation-slammed deadline back
	// to the context's error, so callers see ctx.Err() rather than a
	// net timeout.
	ctxify := func(err error) error {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return err
	}
	codec, err := NewCodec(conn, c.cfg.Timeout)
	if err != nil {
		_ = conn.Close()
		return 0, err
	}
	defer func() { _ = codec.Close() }()

	helloType := MsgHello
	if c.cfg.Join {
		helloType = MsgJoin
	}
	if err := codec.Send(&Message{Type: helloType, ClientID: c.cfg.ID}); err != nil {
		return 0, ctxify(err)
	}
	welcome, err := codec.Recv()
	if err != nil {
		return 0, ctxify(err)
	}
	if welcome.Type != MsgWelcome {
		return 0, fmt.Errorf("transport: expected welcome, got %v", welcome.Type)
	}
	q := welcome.Q
	localSteps := welcome.LocalSteps
	batch := welcome.BatchSize
	if q <= 0 || q > 1 || localSteps <= 0 || batch <= 0 {
		return 0, errors.New("transport: invalid welcome parameters")
	}

	rng := stats.NewRNG(c.cfg.Seed)
	sgd := rng // historical default: coins and gradients share one stream
	if c.cfg.SGDRNG != nil {
		sgd = c.cfg.SGDRNG
	}
	grad := c.model.ZeroParams()
	var gradStats stats.Welford
	participated := 0
	for {
		// Proactive check: cancellation that lands while this client is
		// busy computing (between socket operations) must not be outrun by
		// the next successful Recv.
		if err := ctx.Err(); err != nil {
			return participated, err
		}
		msg, err := codec.Recv()
		if err != nil {
			return participated, ctxify(err)
		}
		switch msg.Type {
		case MsgDone:
			return participated, nil
		case MsgLeave:
			// Coordinator-initiated retirement: acknowledge and exit.
			if err := codec.Send(&Message{Type: MsgBye, ClientID: c.cfg.ID}); err != nil {
				return participated, ctxify(err)
			}
			return participated, nil
		case MsgRoundStart:
			if c.cfg.LeaveAfter > 0 && msg.Round >= c.cfg.LeaveAfter {
				// Device-initiated graceful departure: announce, await the
				// farewell, exit cleanly.
				if err := codec.Send(&Message{
					Type: MsgLeave, ClientID: c.cfg.ID, Round: msg.Round,
				}); err != nil {
					return participated, ctxify(err)
				}
				bye, err := codec.Recv()
				if err != nil {
					return participated, ctxify(err)
				}
				if bye.Type != MsgBye {
					return participated, fmt.Errorf("transport: expected bye, got %v", bye.Type)
				}
				return participated, nil
			}
			var fault RoundFault
			if c.cfg.FaultFunc != nil {
				fault = c.cfg.FaultFunc(msg.Round)
			}
			if fault.Crash {
				return participated, ErrInjectedCrash
			}
			if fault.Delay > 0 {
				timer := time.NewTimer(fault.Delay)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return participated, ctx.Err()
				}
			}
			// The client decides participation on its own — the essence of
			// the paper's randomized independent participation. The coin is
			// drawn before the fault gate so an injected skip displaces
			// nothing: the willingness stream stays identical with and
			// without the fault schedule, matching the in-process sampler's
			// discipline.
			willing := rng.Bernoulli(q)
			if fault.Skip || !willing {
				if err := codec.Send(&Message{
					Type: MsgSkip, ClientID: c.cfg.ID, Round: msg.Round,
					GradSqNorm: gradStats.Mean(),
				}); err != nil {
					return participated, ctxify(err)
				}
				continue
			}
			w := tensor.Vec(msg.Model).Clone()
			for e := 0; e < localSteps; e++ {
				if err := c.model.StochasticGradient(w, c.shard, batch, sgd, grad); err != nil {
					return participated, err
				}
				gradStats.Add(grad.SqNorm())
				if err := w.AddScaled(-msg.LR, grad); err != nil {
					return participated, err
				}
			}
			delta, err := tensor.Sub(w, tensor.Vec(msg.Model))
			if err != nil {
				return participated, err
			}
			participated++
			if err := codec.Send(&Message{
				Type: MsgUpdate, ClientID: c.cfg.ID, Round: msg.Round,
				Model: delta, GradSqNorm: gradStats.Mean(),
			}); err != nil {
				return participated, ctxify(err)
			}
		default:
			return participated, fmt.Errorf("transport: unexpected message %v", msg.Type)
		}
	}
}
