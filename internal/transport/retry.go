package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"unbiasedfl/internal/stats"
)

// Default retry tuning. DialRetry substitutes these for zero fields so a
// RetryPolicy{Attempts: 5} literal behaves sensibly.
const (
	// DefaultRetryBase is the first backoff interval.
	DefaultRetryBase = 50 * time.Millisecond
	// DefaultRetryMax caps the exponential backoff.
	DefaultRetryMax = 2 * time.Second
)

// RetryPolicy configures DialRetry: capped exponential backoff with
// deterministic jitter between dial attempts. The zero value is a single
// un-retried attempt, matching the historical single-shot dial.
type RetryPolicy struct {
	// Attempts is the maximum number of dial attempts (values below 1 mean
	// one attempt, i.e. no retry).
	Attempts int
	// Base is the backoff before the second attempt; it doubles each retry
	// (0 = DefaultRetryBase).
	Base time.Duration
	// Max caps the backoff (0 = DefaultRetryMax).
	Max time.Duration
	// HandshakeTimeout bounds each attempt's connect + version handshake
	// (0 = DefaultHandshakeTimeout, shared with the accept side).
	HandshakeTimeout time.Duration
}

// normalized fills zero fields with the defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Base <= 0 {
		p.Base = DefaultRetryBase
	}
	if p.Max <= 0 {
		p.Max = DefaultRetryMax
	}
	if p.HandshakeTimeout <= 0 {
		p.HandshakeTimeout = DefaultHandshakeTimeout
	}
	return p
}

// fatalDialError reports errors that no amount of retrying can fix: the
// peer is alive but will never speak our protocol.
func fatalDialError(err error) bool {
	return errors.Is(err, ErrVersionMismatch) || errors.Is(err, ErrBadMagic)
}

// DialRetry dials addr and completes the version handshake, retrying
// transient failures (connection refused, reset, handshake timeout) under
// the policy's capped exponential backoff. Fatal handshake outcomes —
// ErrVersionMismatch, ErrBadMagic — abort immediately: the peer answered
// and will keep answering the same way. rng, when non-nil, supplies
// deterministic jitter (each sleep is scaled into [½, 1] of the nominal
// backoff) so a rebooting fleet does not reconnect in lockstep; nil means
// no jitter. The returned connection has completed the handshake and
// carries no deadline.
func DialRetry(ctx context.Context, addr string, policy RetryPolicy, rng *stats.RNG) (net.Conn, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := policy.normalized()
	backoff := p.Base
	var lastErr error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			sleep := backoff
			if rng != nil {
				sleep = time.Duration((0.5 + 0.5*rng.Float64()) * float64(sleep))
			}
			timer := time.NewTimer(sleep)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			}
			if backoff *= 2; backoff > p.Max {
				backoff = p.Max
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		conn, err := dialOnce(ctx, addr, p.HandshakeTimeout)
		if err == nil {
			return conn, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		if fatalDialError(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: dial %s failed after %d attempts: %w", addr, p.Attempts, lastErr)
}

// dialOnce performs one connect + handshake attempt under its own deadline.
func dialOnce(ctx context.Context, addr string, timeout time.Duration) (net.Conn, error) {
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	// The cancellation watcher makes a ctx cancelled mid-handshake sever the
	// socket rather than wait out the deadline.
	stop := watchCancel(ctx, conn)
	defer stop()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := Handshake(conn); err != nil {
		_ = conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, nil
}
