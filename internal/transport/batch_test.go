package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// encodeFramed gob-encodes msgs into the wire form the codec ships: one
// length-prefixed frame per message.
func encodeFramed(t testing.TB, msgs ...*Message) []byte {
	t.Helper()
	var out bytes.Buffer
	var stage bytes.Buffer
	enc := gob.NewEncoder(&stage)
	for _, m := range msgs {
		stage.Reset()
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&out, stage.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	return out.Bytes()
}

// TestBatchMessagesRoundTrip pins the protocol-v5 envelope: a MsgBatchStart
// and its MsgPartial reply survive the codec bit-exactly, parallel slices
// and fixed-point limbs included.
func TestBatchMessagesRoundTrip(t *testing.T) {
	c1, c2 := net.Pipe()
	defer func() { _ = c1.Close() }()
	defer func() { _ = c2.Close() }()
	a, err := NewCodec(c1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCodec(c2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	batch := &Message{
		Type: MsgBatchStart, ClientID: 3, Round: 7, LR: 0.05,
		Model:   []float64{0.25, -1.5, 3.75},
		Clients: []int{9, 10, 11},
		Scales:  []float64{0.5, 1.25, 2},
		Cursors: []Cursor{{RNG: [4]uint64{1, 2, 3, 4}, SqCount: 5, SqMean: 0.5, SqM2: 0.25}, {}, {}},
	}
	partial := &Message{
		Type: MsgPartial, ClientID: 3, Round: 7,
		Clients: []int{9, 10, 11},
		GradSqs: []float64{1, 2, 3},
		Cursors: []Cursor{{}, {}, {RNG: [4]uint64{5, 6, 7, 8}}},
		Lo:      []uint64{1, ^uint64(0), 42},
		Hi:      []uint64{0, ^uint64(0), 7},
		Sat:     true,
	}
	done := make(chan error, 1)
	go func() {
		if err := a.Send(batch); err != nil {
			done <- err
			return
		}
		done <- a.Send(partial)
	}()
	for _, want := range []*Message{batch, partial} {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.ClientID != want.ClientID || got.Round != want.Round ||
			got.Sat != want.Sat || len(got.Clients) != len(want.Clients) ||
			len(got.Cursors) != len(want.Cursors) {
			t.Fatalf("round-trip mangled the envelope: %+v vs %+v", got, want)
		}
		for i := range want.Clients {
			if got.Clients[i] != want.Clients[i] {
				t.Fatalf("Clients[%d] = %d, want %d", i, got.Clients[i], want.Clients[i])
			}
		}
		for i := range want.Lo {
			if got.Lo[i] != want.Lo[i] || got.Hi[i] != want.Hi[i] {
				t.Fatalf("limb %d = (%d,%d), want (%d,%d)", i, got.Lo[i], got.Hi[i], want.Lo[i], want.Hi[i])
			}
		}
		if len(want.Cursors) > 0 && got.Cursors[len(got.Cursors)-1].RNG != want.Cursors[len(want.Cursors)-1].RNG {
			t.Fatal("cursor state did not survive the wire")
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSendOversizedBatchFailsCleanly pins the per-message frame budget: a
// batch whose encoding exceeds MaxFrameSize must fail with ErrFrameTooLarge
// — naming the offending batch size — before a single byte moves, so the
// stream never desynchronizes.
// TestRecvDeadlineDoesNotArmLaterRecvs is the stale-deadline regression a
// million-client fleet found: a group node reads its welcome with
// RecvDeadline (bounded by the handshake window) and then blocks in Recv —
// no per-op timeout — for its first batch, which arrives only after the
// coordinator has serialized every batch ahead of it. The handshake deadline
// must not stay armed on the socket and kill that wait.
func TestRecvDeadlineDoesNotArmLaterRecvs(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()

	codec, err := NewCodec(client, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewCodec(server, 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = sc.Send(&Message{Type: MsgWelcome, ClientID: 1})
		time.Sleep(150 * time.Millisecond) // well past the handshake deadline below
		_ = sc.Send(&Message{Type: MsgBatchStart, ClientID: 1, Round: 0})
	}()

	if _, err := codec.RecvDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatalf("welcome within the deadline: %v", err)
	}
	batch, err := codec.Recv()
	if err != nil {
		t.Fatalf("first batch after the handshake window closed: %v (stale deadline leaked)", err)
	}
	if batch.Type != MsgBatchStart {
		t.Fatalf("got %v, want MsgBatchStart", batch.Type)
	}
}

func TestSendOversizedBatchFailsCleanly(t *testing.T) {
	c1, c2 := net.Pipe()
	defer func() { _ = c1.Close() }()
	defer func() { _ = c2.Close() }()
	codec, err := NewCodec(c1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// ~8.5M full-mantissa float64 parameters (gob spends ~9 bytes on each;
	// zeros would compress to one byte) encode past the 64 MiB budget. No
	// reader is attached to the pipe: if Send tried to write anything it
	// would block and the test would time out, which is itself the
	// regression signal.
	model := make([]float64, MaxFrameSize/8+(1<<20))
	for i := range model {
		model[i] = 1.0 / 3.0
	}
	msg := &Message{
		Type:    MsgBatchStart,
		Clients: make([]int, 1000),
		Model:   model,
	}
	err = codec.Send(msg)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized batch returned %v, want ErrFrameTooLarge", err)
	}
	if !strings.Contains(err.Error(), "1000 clients") {
		t.Fatalf("error does not name the offending batch size: %v", err)
	}
}

// FuzzDecodeBatch throws arbitrary framed bytes at the codec's message
// decode path: it must never panic and never allocate beyond the frame
// budget, whatever a corrupt or hostile multiplexed peer ships.
func FuzzDecodeBatch(f *testing.F) {
	valid := encodeFramed(f, &Message{
		Type: MsgBatchStart, ClientID: 1, Round: 2, LR: 0.1,
		Model:   []float64{1, 2},
		Clients: []int{3, 4},
		Scales:  []float64{0.5, 0.5},
		Cursors: []Cursor{{RNG: [4]uint64{1, 2, 3, 4}}, {}},
	})
	f.Add(valid)
	f.Add(encodeFramed(f, &Message{
		Type: MsgPartial, ClientID: 1, Round: 2,
		Clients: []int{3}, GradSqs: []float64{9},
		Cursors: []Cursor{{}}, Lo: []uint64{1}, Hi: []uint64{2}, Sat: true,
	}))
	f.Add(valid[:len(valid)/2])                 // truncated mid-frame
	f.Add(append([]byte{0, 0, 0, 4}, valid...)) // length prefix lies
	f.Fuzz(func(t *testing.T, b []byte) {
		fr := &frameReader{r: bytes.NewReader(b)}
		dec := gob.NewDecoder(fr)
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		// Whatever decoded must be re-encodable within the same budget the
		// sender enforces (or rejected by it) — never a panic.
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(&m); err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
	})
}
