package transport

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"unbiasedfl/internal/data"
	"unbiasedfl/internal/model"
	"unbiasedfl/internal/stats"
	"unbiasedfl/internal/testutil"
)

// rawDial opens a codec to the server (completing the version handshake)
// and sends an arbitrary first message.
func rawDial(t *testing.T, addr string, first *Message) *Codec {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.SetDeadline(time.Now().Add(3 * time.Second))
	if err := Handshake(conn); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetDeadline(time.Time{})
	codec, err := NewCodec(conn, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(first); err != nil {
		t.Fatal(err)
	}
	return codec
}

func robustnessServer(t *testing.T, clients int) *Server {
	t.Helper()
	m, err := model.NewLogisticRegression(2, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, clients)
	w := make([]float64, clients)
	for i := range q {
		q[i] = 1
		w[i] = 1 / float64(clients)
	}
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: clients,
		Q: q, Weights: w,
		Rounds: 2, LocalSteps: 1, BatchSize: 4,
		Schedule: expDecay{Eta0: 0.05, Decay: 1},
		Timeout:  3 * time.Second,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestServerRejectsBadHello verifies the coordinator aborts on a protocol
// violation during registration: a non-hello first message.
func TestServerRejectsBadHello(t *testing.T) {
	srv := robustnessServer(t, 1)
	defer func() { _ = srv.Close() }()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	codec := rawDial(t, srv.Addr(), &Message{Type: MsgUpdate, ClientID: 0})
	defer func() { _ = codec.Close() }()
	if err := <-done; err == nil {
		t.Fatal("server accepted a non-hello first message")
	}
}

// TestServerRejectsOutOfRangeID verifies id validation at registration.
func TestServerRejectsOutOfRangeID(t *testing.T) {
	srv := robustnessServer(t, 1)
	defer func() { _ = srv.Close() }()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	codec := rawDial(t, srv.Addr(), &Message{Type: MsgHello, ClientID: 5})
	defer func() { _ = codec.Close() }()
	if err := <-done; err == nil {
		t.Fatal("server accepted an out-of-range client id")
	}
}

// TestServerRejectsDuplicateID verifies duplicate registration is refused.
func TestServerRejectsDuplicateID(t *testing.T) {
	srv := robustnessServer(t, 2)
	defer func() { _ = srv.Close() }()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	first := rawDial(t, srv.Addr(), &Message{Type: MsgHello, ClientID: 0})
	defer func() { _ = first.Close() }()
	if _, err := first.Recv(); err != nil { // consume the welcome
		t.Fatal(err)
	}
	second := rawDial(t, srv.Addr(), &Message{Type: MsgHello, ClientID: 0})
	defer func() { _ = second.Close() }()
	if err := <-done; err == nil {
		t.Fatal("server accepted a duplicate client id")
	}
}

// tolerantServer builds a fault-tolerant coordinator with a tight round
// timeout, so dead or silent clients are detected within test patience.
func tolerantServer(t *testing.T, clients int, timeout time.Duration) *Server {
	t.Helper()
	m, err := model.NewLogisticRegression(2, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, clients)
	w := make([]float64, clients)
	for i := range q {
		q[i] = 1
		w[i] = 1 / float64(clients)
	}
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: clients,
		Q: q, Weights: w,
		Rounds: 3, LocalSteps: 1, BatchSize: 4,
		Schedule:       expDecay{Eta0: 0.05, Decay: 1},
		Timeout:        timeout,
		TolerateFaults: true,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// liveShard is a tiny 2-dim/2-class dataset for a real client riding along a
// robustness scenario.
func liveShard() *data.Dataset {
	return &data.Dataset{
		Dim: 2, Classes: 2,
		X: [][]float64{{1, 1}, {0.5, -1}, {-1, 0.3}, {0.2, 0.8}},
		Y: []int{0, 1, 1, 0},
	}
}

// TestServerToleratesDeathAfterWelcome: a node that registers (so it holds a
// slot and a welcome) and then dies must have its slot released — the
// surviving fleet finishes all rounds, the dead client is recorded as
// dropped, and no goroutine outlives the run.
func TestServerToleratesDeathAfterWelcome(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	srv := tolerantServer(t, 2, 2*time.Second)
	defer func() { _ = srv.Close() }()
	done := make(chan struct {
		res *ServerResult
		err error
	}, 1)
	go func() {
		res, err := srv.Run(context.Background())
		done <- struct {
			res *ServerResult
			err error
		}{res, err}
	}()

	m, err := model.NewLogisticRegression(2, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewClient(ClientConfig{
		Addr: srv.Addr(), ID: 0, Seed: 41, Timeout: 5 * time.Second,
	}, m, liveShard())
	if err != nil {
		t.Fatal(err)
	}
	liveDone := make(chan error, 1)
	go func() {
		_, err := live.Run(context.Background())
		liveDone <- err
	}()

	dead := rawDial(t, srv.Addr(), &Message{Type: MsgHello, ClientID: 1})
	if _, err := dead.Recv(); err != nil { // it held the welcome...
		t.Fatal(err)
	}
	_ = dead.Close() // ...and died.

	out := <-done
	if out.err != nil {
		t.Fatalf("fleet did not survive a post-welcome death: %v", out.err)
	}
	if err := <-liveDone; err != nil {
		t.Fatalf("surviving client: %v", err)
	}
	if !out.res.Dropped[1] || out.res.ParticipationCounts[1] != 0 {
		t.Fatalf("dead client not recorded as dropped: dropped=%v counts=%v",
			out.res.Dropped, out.res.ParticipationCounts)
	}
	if out.res.ParticipationCounts[0] != 3 {
		t.Fatalf("survivor joined %d/3 rounds", out.res.ParticipationCounts[0])
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestServerClosesConnOfSilentClient: a registered node that goes silent
// mid-round must be dropped at the deadline AND have its server-side
// connection closed (observable as EOF on the peer side) — the conn-leak
// half of the slot-release contract.
func TestServerClosesConnOfSilentClient(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	srv := tolerantServer(t, 2, 500*time.Millisecond)
	defer func() { _ = srv.Close() }()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()

	m, err := model.NewLogisticRegression(2, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewClient(ClientConfig{
		Addr: srv.Addr(), ID: 0, Seed: 43, Timeout: 5 * time.Second,
	}, m, liveShard())
	if err != nil {
		t.Fatal(err)
	}
	liveDone := make(chan error, 1)
	go func() {
		_, err := live.Run(context.Background())
		liveDone <- err
	}()

	silent := rawDial(t, srv.Addr(), &Message{Type: MsgHello, ClientID: 1})
	defer func() { _ = silent.Close() }()
	if _, err := silent.Recv(); err != nil { // welcome
		t.Fatal(err)
	}
	if _, err := silent.Recv(); err != nil { // round 0 start — then say nothing
		t.Fatal(err)
	}

	if err := <-done; err != nil {
		t.Fatalf("fleet did not survive a silent client: %v", err)
	}
	if err := <-liveDone; err != nil {
		t.Fatalf("surviving client: %v", err)
	}
	// The server must have severed the silent client's connection when it
	// dropped it; from the peer side that is a read error, never a hang.
	if _, err := silent.RecvDeadline(time.Now().Add(5 * time.Second)); err == nil {
		t.Fatal("server left the silent client's connection open")
	}
	testutil.WaitNoLeaks(t, baseline, 10*time.Second)
}

// TestEndToEndTCPWithRidge runs the prototype with the second model family
// through the Model interface.
func TestEndToEndTCPWithRidge(t *testing.T) {
	const numClients = 4
	cfg := data.MNISTLikeConfig()
	cfg.NumClients = numClients
	cfg.TotalSamples = 600
	cfg.TestSamples = 100
	cfg.Dim = 6
	cfg.Classes = 3
	cfg.MaxClasses = 2
	fed, err := data.GenerateImageLike(stats.NewRNG(51), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewRidgeRegression(cfg.Dim, cfg.Classes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.8, 0.8, 0.8, 0.8}
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: numClients,
		Q: q, Weights: fed.Weights,
		Rounds: 20, LocalSteps: 4, BatchSize: 8,
		// Ridge has L ≈ max‖x̃‖² (no softmax ½ factor), so the step must be
		// far smaller than the logistic runs use.
		Schedule: expDecay{Eta0: 0.002, Decay: 0.996},
		Timeout:  10 * time.Second,
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		client, err := NewClient(ClientConfig{
			Addr: srv.Addr(), ID: id, Seed: uint64(70 + id), Timeout: 10 * time.Second,
		}, m, fed.Clients[id])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Run(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	result, err := srv.Run(context.Background())
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	zeroLoss, err := m.Loss(m.ZeroParams(), fed.Train)
	if err != nil {
		t.Fatal(err)
	}
	finalLoss, err := m.Loss(result.FinalModel, fed.Train)
	if err != nil {
		t.Fatal(err)
	}
	if finalLoss >= zeroLoss {
		t.Fatalf("ridge TCP training did not improve: %v >= %v", finalLoss, zeroLoss)
	}
}
