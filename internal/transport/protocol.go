// Package transport reproduces the paper's hardware-prototype communication
// substrate: "We develop a TCP-based socket interface for the communication
// between the server and clients." It implements a versioned, length-framed
// gob protocol over net.Conn, a coordinator (the laptop server in the paper)
// and client nodes (the Raspberry Pis), runnable across real TCP sockets on
// localhost or a LAN. The FL semantics — Bernoulli(q_n) participation decided
// client-side and unbiased aggregation server-side — match internal/fl.
//
// The package is deliberately wire-level only (messages, frames, handshake,
// codec, and the prototype's server/client roles): the unified federation
// engine in internal/engine layers its ClusterBackend on top of these
// primitives, so transport must not depend on the orchestration layers.
//
// Every connection opens with a 5-byte handshake — a 4-byte magic followed
// by a protocol version byte, written by both sides and validated before any
// message moves. After the handshake, each gob-encoded message travels in
// one length-prefixed frame (4-byte big-endian length, then the payload),
// bounded by MaxFrameSize so a corrupt or hostile peer cannot force an
// unbounded allocation.
package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Protocol framing constants.
const (
	// ProtocolVersion is the current wire-protocol version, bumped on every
	// incompatible change (version 1: unframed gob; version 2: handshake +
	// length-framed gob; version 3: resumable executor cursors on
	// MsgWelcome/MsgUpdate; version 4: membership churn — MsgJoin handshake
	// for prospective members, MsgLeave/MsgBye graceful retirement;
	// version 5: multiplexed virtual clients — MsgGroupHello/MsgBatchStart/
	// MsgPartial batch a whole sub-aggregator group's tasks onto one socket
	// and ship back a single fixed-point group partial).
	ProtocolVersion byte = 5
	// MaxFrameSize bounds a single frame's payload. The largest legitimate
	// frame is a MsgRoundStart carrying the flattened global model; 64 MiB
	// covers ~8M float64 parameters with gob overhead to spare.
	MaxFrameSize = 64 << 20
	// frameHeaderSize is the length prefix: a 4-byte big-endian payload size.
	frameHeaderSize = 4
)

// handshakeMagic identifies the protocol on the wire ("UFL" + NUL).
var handshakeMagic = [4]byte{'U', 'F', 'L', 0}

// ErrVersionMismatch reports a peer speaking a different protocol version.
// Use errors.Is to detect it; the full error carries both versions.
var ErrVersionMismatch = errors.New("transport: protocol version mismatch")

// ErrBadMagic reports a peer that is not speaking this protocol at all.
var ErrBadMagic = errors.New("transport: bad handshake magic")

// ErrFrameTooLarge reports a message whose encoded frame exceeds
// MaxFrameSize. Both Send (before any bytes move) and DecodeFrame (before
// any allocation) return it; use errors.Is to detect it. For batched
// messages the error names the offending batch size, so an oversized
// MsgBatchStart points straight at the group-size knob that caused it.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// Handshake exchanges and validates the protocol preamble on a fresh
// connection: each side writes the 4-byte magic plus its version byte, then
// reads and checks the peer's. Both the coordinator and the nodes call it
// symmetrically, so a version-skewed or alien peer is rejected with a clear
// error before any gob traffic. The caller manages deadlines (see
// ServerConfig.HandshakeTimeout for the accept side).
func Handshake(conn net.Conn) error {
	if conn == nil {
		return errors.New("transport: nil connection")
	}
	var out [frameHeaderSize + 1]byte
	copy(out[:], handshakeMagic[:])
	out[4] = ProtocolVersion
	if _, err := conn.Write(out[:]); err != nil {
		return fmt.Errorf("transport: handshake write: %w", err)
	}
	var in [frameHeaderSize + 1]byte
	if _, err := io.ReadFull(conn, in[:]); err != nil {
		return fmt.Errorf("transport: handshake read: %w", err)
	}
	if !bytes.Equal(in[:4], handshakeMagic[:]) {
		return fmt.Errorf("%w: got % x, want % x", ErrBadMagic, in[:4], handshakeMagic[:])
	}
	if in[4] != ProtocolVersion {
		return fmt.Errorf("%w: peer speaks version %d, this build speaks %d",
			ErrVersionMismatch, in[4], ProtocolVersion)
	}
	return nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrFrameTooLarge, len(payload), MaxFrameSize)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// DecodeFrame reads one length-prefixed frame from r, reusing buf when it is
// large enough. It validates the declared length against MaxFrameSize before
// allocating, so a corrupt or hostile length prefix cannot trigger an
// unbounded allocation; the FuzzDecodeFrame target pins this.
func DecodeFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrFrameTooLarge, n, MaxFrameSize)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("transport: short frame: %w", err)
	}
	return buf, nil
}

// MsgType discriminates protocol messages.
type MsgType int

// Protocol message types.
const (
	// MsgHello is sent by a client after dialing: it announces its ID.
	MsgHello MsgType = iota + 1
	// MsgWelcome acknowledges a hello and carries the run configuration.
	MsgWelcome
	// MsgRoundStart carries the current global model to every client.
	MsgRoundStart
	// MsgUpdate carries a participating client's model delta back.
	MsgUpdate
	// MsgSkip tells the server the client sat this round out.
	MsgSkip
	// MsgDone ends the session.
	MsgDone
	// MsgJoin is a prospective member's hello (protocol v4): the peer asks
	// to enter the federation and is welcomed — with its authoritative
	// cursor — at the next membership-epoch boundary.
	MsgJoin
	// MsgLeave requests a graceful permanent departure (protocol v4). The
	// coordinator sends it to retire a node at an epoch boundary; the
	// prototype client sends it to announce its own exit.
	MsgLeave
	// MsgBye acknowledges a MsgLeave; the connection closes after it.
	MsgBye
	// MsgGroupHello is a multiplexed node's hello (protocol v5): the peer
	// announces it hosts a whole sub-aggregator group of virtual clients,
	// identified by ClientID = group index.
	MsgGroupHello
	// MsgBatchStart carries one round's work for an entire group over a
	// single socket (protocol v5): the global model plus parallel Clients/
	// Scales/Cursors slices, one entry per tasked member.
	MsgBatchStart
	// MsgPartial carries a group's folded contribution back (protocol v5):
	// the 128-bit fixed-point limbs of Σ (a_n/q_n)·delta_n over the batch,
	// plus per-member gradient statistics and post-update cursors.
	MsgPartial
)

// Message is the single wire envelope. Unused fields stay at their zero
// values; gob encodes them compactly.
type Message struct {
	Type     MsgType
	ClientID int
	Round    int
	// Model carries the flattened global parameters (MsgRoundStart) or the
	// client's delta (MsgUpdate).
	Model []float64
	// Q is the participation level assigned to the client (MsgWelcome).
	Q float64
	// LocalSteps and BatchSize configure client-side SGD (MsgWelcome).
	LocalSteps int
	BatchSize  int
	Rounds     int
	// Coordinated marks an engine-driven session (MsgWelcome): participation
	// is decided centrally by the orchestrator's sampler and a round-start is
	// itself the invitation, so the client must not draw willingness coins or
	// send MsgSkip.
	Coordinated bool
	// LR is the learning rate for the announced round (MsgRoundStart).
	LR float64
	// GradSqNorm reports the client's running mean squared gradient norm
	// (MsgUpdate/MsgSkip), feeding the server's G_n estimates.
	GradSqNorm float64
	// Cursor carries resumable executor state: on MsgWelcome the coordinator
	// positions the node's SGD stream (fresh boot, resume, or reconnect after
	// a failure all look the same to the node); on MsgUpdate the node reports
	// its post-update cursor so the coordinator's table stays authoritative
	// even if the node later dies.
	Cursor *Cursor

	// Multiplexed-group fields (protocol v5). On MsgBatchStart, Clients lists
	// the tasked members of the group, Scales their Lemma-1 a_n/q_n fold
	// coefficients, and Cursors their authoritative executor positions — the
	// node keeps no per-client state between rounds. On MsgPartial, Clients
	// echoes the batch, Lo/Hi carry the fixed-point limbs of the group sum
	// (one pair per model parameter), Sat reports fixed-point saturation,
	// and GradSqs/Cursors report per-member statistics and post-update
	// positions aligned with Clients.
	Clients []int
	Scales  []float64
	Cursors []Cursor
	Lo, Hi  []uint64
	Sat     bool
	GradSqs []float64
}

// Cursor is the wire form of one client executor's resumable state: the
// xoshiro cursor of its private SGD stream and its Welford gradient-norm
// accumulator.
type Cursor struct {
	RNG     [4]uint64
	SqCount int
	SqMean  float64
	SqM2    float64
}

// Codec wraps a connection with framed gob encoding and deadlines. Each
// Send stages one gob message in a reusable buffer and ships it as a single
// frame; each Recv pulls frames through a frame-aware reader feeding the gob
// decoder. A Codec is not safe for concurrent use of the same direction.
type Codec struct {
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
	wbuf    bytes.Buffer
	fr      frameReader
}

// NewCodec wraps conn. timeout bounds each send/receive (0 = no deadline).
func NewCodec(conn net.Conn, timeout time.Duration) (*Codec, error) {
	if conn == nil {
		return nil, errors.New("transport: nil connection")
	}
	c := &Codec{conn: conn, timeout: timeout}
	c.fr.r = conn
	c.enc = gob.NewEncoder(&c.wbuf)
	c.dec = gob.NewDecoder(&c.fr)
	return c, nil
}

// Send writes one message as a single frame.
func (c *Codec) Send(m *Message) error {
	if c.timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("transport: set write deadline: %w", err)
		}
	}
	c.wbuf.Reset()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	if c.wbuf.Len() > MaxFrameSize {
		// Check the budget before a single byte moves, so an oversized batch
		// fails cleanly instead of desynchronizing the stream — and name the
		// batch size, because for MsgBatchStart/MsgPartial the fix is a
		// smaller group, not a bigger frame limit.
		if n := len(m.Clients); n > 0 {
			return fmt.Errorf("%w: message type %d with batch of %d clients encodes to %d bytes (limit %d)",
				ErrFrameTooLarge, m.Type, n, c.wbuf.Len(), MaxFrameSize)
		}
		return fmt.Errorf("%w: message type %d encodes to %d bytes (limit %d)",
			ErrFrameTooLarge, m.Type, c.wbuf.Len(), MaxFrameSize)
	}
	if err := WriteFrame(c.conn, c.wbuf.Bytes()); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// Recv reads one message.
func (c *Codec) Recv() (*Message, error) {
	if c.timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("transport: set read deadline: %w", err)
		}
	}
	return c.recv()
}

// RecvDeadline reads one message under an absolute deadline, overriding the
// codec's per-operation timeout for this read — the accept path uses it to
// bound the hello handshake independently of the (much longer) round
// timeout.
func (c *Codec) RecvDeadline(deadline time.Time) (*Message, error) {
	if err := c.conn.SetReadDeadline(deadline); err != nil {
		return nil, fmt.Errorf("transport: set read deadline: %w", err)
	}
	m, err := c.recv()
	if c.timeout == 0 {
		// The deadline is a one-off override. A codec with no per-operation
		// timeout must not inherit it for every later Recv: a group node's
		// first batch can legitimately arrive long after the handshake
		// window closes, once the coordinator has serialized hundreds of
		// batches ahead of it.
		_ = c.conn.SetReadDeadline(time.Time{})
	}
	return m, err
}

func (c *Codec) recv() (*Message, error) {
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return &m, nil
}

// Close closes the underlying connection.
func (c *Codec) Close() error { return c.conn.Close() }

// frameReader feeds the gob decoder the concatenated payloads of successive
// frames, pulling the next frame from the connection only when the current
// one is exhausted. It implements io.ByteReader so the gob decoder uses it
// directly, without a readahead buffer that could block on a frame boundary.
type frameReader struct {
	r       io.Reader
	buf     []byte // reusable frame payload storage
	payload []byte // unread remainder of the current frame
}

func (f *frameReader) Read(p []byte) (int, error) {
	if len(f.payload) == 0 {
		if err := f.next(); err != nil {
			return 0, err
		}
	}
	n := copy(p, f.payload)
	f.payload = f.payload[n:]
	return n, nil
}

func (f *frameReader) ReadByte() (byte, error) {
	if len(f.payload) == 0 {
		if err := f.next(); err != nil {
			return 0, err
		}
	}
	b := f.payload[0]
	f.payload = f.payload[1:]
	return b, nil
}

func (f *frameReader) next() error {
	payload, err := DecodeFrame(f.r, f.buf)
	if err != nil {
		return err
	}
	if len(payload) == 0 {
		// Our encoder never ships an empty message, so an empty frame is a
		// protocol violation — and accepting it would let a hostile peer spin
		// the decode loop without delivering bytes.
		return errors.New("transport: empty frame")
	}
	if cap(payload) > cap(f.buf) {
		f.buf = payload[:cap(payload)]
	}
	f.payload = payload
	return nil
}

// watchCancel closes the connection when ctx is cancelled. gob decode
// loops otherwise block unboundedly on a dead or silent peer, and a mere
// deadline slam would be erased by the Codec's per-operation deadline
// resets — closing is sticky: the pending read fails immediately and every
// later operation fails with "use of closed network connection", which
// callers translate back into ctx.Err(). The returned stop function
// releases the watcher; it is safe to call any number of times.
func watchCancel(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-done:
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
