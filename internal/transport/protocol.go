// Package transport reproduces the paper's hardware-prototype communication
// substrate: "We develop a TCP-based socket interface for the communication
// between the server and clients." It implements a length-delimited gob
// protocol over net.Conn, a coordinator (the laptop server in the paper)
// and client nodes (the Raspberry Pis), runnable across real TCP sockets on
// localhost or a LAN. The FL semantics — Bernoulli(q_n) participation decided
// client-side and unbiased aggregation server-side — match internal/fl.
package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// MsgType discriminates protocol messages.
type MsgType int

// Protocol message types.
const (
	// MsgHello is sent by a client after dialing: it announces its ID.
	MsgHello MsgType = iota + 1
	// MsgWelcome acknowledges a hello and carries the run configuration.
	MsgWelcome
	// MsgRoundStart carries the current global model to every client.
	MsgRoundStart
	// MsgUpdate carries a participating client's model delta back.
	MsgUpdate
	// MsgSkip tells the server the client sat this round out.
	MsgSkip
	// MsgDone ends the session.
	MsgDone
)

// Message is the single wire envelope. Unused fields stay at their zero
// values; gob encodes them compactly.
type Message struct {
	Type     MsgType
	ClientID int
	Round    int
	// Model carries the flattened global parameters (MsgRoundStart) or the
	// client's delta (MsgUpdate).
	Model []float64
	// Q is the participation level assigned to the client (MsgWelcome).
	Q float64
	// LocalSteps and BatchSize configure client-side SGD (MsgWelcome).
	LocalSteps int
	BatchSize  int
	Rounds     int
	// LR is the learning rate for the announced round (MsgRoundStart).
	LR float64
	// GradSqNorm reports the client's running mean squared gradient norm
	// (MsgUpdate/MsgSkip), feeding the server's G_n estimates.
	GradSqNorm float64
}

// Codec wraps a connection with gob encoding and deadlines.
type Codec struct {
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
}

// NewCodec wraps conn. timeout bounds each send/receive (0 = no deadline).
func NewCodec(conn net.Conn, timeout time.Duration) (*Codec, error) {
	if conn == nil {
		return nil, errors.New("transport: nil connection")
	}
	return &Codec{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		timeout: timeout,
	}, nil
}

// Send writes one message.
func (c *Codec) Send(m *Message) error {
	if c.timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("transport: set write deadline: %w", err)
		}
	}
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	return nil
}

// Recv reads one message.
func (c *Codec) Recv() (*Message, error) {
	if c.timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("transport: set read deadline: %w", err)
		}
	}
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return &m, nil
}

// Close closes the underlying connection.
func (c *Codec) Close() error { return c.conn.Close() }

// watchCancel closes the connection when ctx is cancelled. gob decode
// loops otherwise block unboundedly on a dead or silent peer, and a mere
// deadline slam would be erased by the Codec's per-operation deadline
// resets — closing is sticky: the pending read fails immediately and every
// later operation fails with "use of closed network connection", which
// callers translate back into ctx.Err(). The returned stop function
// releases the watcher; it is safe to call any number of times.
func watchCancel(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-done:
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
