// Package unbiasedfl is the public façade of the reproduction of
// "Incentive Mechanism Design for Unbiased Federated Learning with
// Randomized Client Participation" (ICDCS 2023).
//
// The library implements the paper's Client Participation Level (CPL)
// Stackelberg game — a server that posts customized per-client prices under
// a budget and rational clients that respond with participation
// probabilities — together with every substrate it needs: an unbiased
// FedAvg-style training engine (Lemma 1), a Theorem-1 convergence-bound
// model, dataset generators, a hardware-prototype timing model, and a TCP
// socket prototype.
//
// # Quick start
//
//	env, err := unbiasedfl.NewSetup(unbiasedfl.Setup1, unbiasedfl.DefaultOptions())
//	...
//	eq, err := env.Params.SolveKKT()        // the paper's mechanism
//	run, err := unbiasedfl.RunScheme(env, unbiasedfl.SchemeOptimal)
//
// See examples/ for runnable programs and README.md for the mapping from
// the paper's tables and figures to the benchmark harness (bench_test.go
// and cmd/flbench).
package unbiasedfl

import (
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/sim"
)

// Game-layer types: the paper's primary contribution.
type (
	// GameParams holds every constant of the CPL game (Section III).
	GameParams = game.Params
	// Equilibrium is a solved Stackelberg equilibrium (Section V).
	Equilibrium = game.Equilibrium
	// Scheme identifies a pricing strategy (Section VI benchmarks).
	Scheme = game.Scheme
	// Outcome is a priced market state under some scheme.
	Outcome = game.Outcome
	// Prior is the server's belief over private client parameters for the
	// Bayesian incomplete-information extension (DESIGN.md X1).
	Prior = game.Prior
	// BayesianOutcome is a posted-price design under incomplete information.
	BayesianOutcome = game.BayesianOutcome
	// Sensitivity holds the equilibrium's comparative statics (DESIGN.md X5).
	Sensitivity = game.Sensitivity
	// CostComponents prices device resources for the decoupled cost model
	// (DESIGN.md X2).
	CostComponents = game.CostComponents
	// DeviceProfile is a device's measured per-round resource usage.
	DeviceProfile = game.DeviceProfile
)

// Pricing schemes compared in the paper's evaluation.
const (
	// SchemeOptimal is the paper's customized equilibrium pricing.
	SchemeOptimal = game.SchemeOptimal
	// SchemeUniform pays every client the same unit price.
	SchemeUniform = game.SchemeUniform
	// SchemeWeighted pays proportionally to data size.
	SchemeWeighted = game.SchemeWeighted
)

// Experiment-layer types: the paper's evaluation section.
type (
	// SetupID selects one of the paper's three experimental setups.
	SetupID = experiment.SetupID
	// Options scales an experiment (DefaultOptions or PaperOptions).
	Options = experiment.Options
	// Environment is a fully-prepared experimental world.
	Environment = experiment.Environment
	// SchemeRun is a pricing scheme's full outcome: market + training.
	SchemeRun = experiment.SchemeRun
	// Comparison bundles all three schemes' runs on one environment.
	Comparison = experiment.Comparison
	// SweepKind selects a swept parameter for the Figs. 5–7 studies.
	SweepKind = experiment.SweepKind
	// SweepPoint is one sweep value's result.
	SweepPoint = experiment.SweepPoint
)

// The paper's Table-I setups.
const (
	// Setup1 uses the Synthetic(1,1) dataset (B=200, c̄=50, v̄=4000).
	Setup1 = experiment.Setup1
	// Setup2 uses the MNIST-like dataset (B=40, c̄=20, v̄=30000).
	Setup2 = experiment.Setup2
	// Setup3 uses the EMNIST-like dataset (B=500, c̄=80, v̄=10000).
	Setup3 = experiment.Setup3
)

// Swept parameters for the impact studies.
const (
	// SweepV varies the mean intrinsic value (Fig. 5).
	SweepV = experiment.SweepV
	// SweepC varies the mean local cost (Fig. 6).
	SweepC = experiment.SweepC
	// SweepB varies the server budget (Fig. 7).
	SweepB = experiment.SweepB
)

// Training-layer types re-exported for custom pipelines.
type (
	// TrainConfig is the FL loop configuration.
	TrainConfig = fl.Config
	// Runner executes federated training.
	Runner = fl.Runner
	// UnbiasedAggregator implements Lemma 1's aggregation rule.
	UnbiasedAggregator = fl.UnbiasedAggregator
	// TimedPoint is a wall-clock-stamped loss/accuracy sample.
	TimedPoint = sim.TimedPoint
)

// DefaultOptions returns the laptop-scale experiment configuration.
func DefaultOptions() Options { return experiment.DefaultOptions() }

// PaperOptions returns the paper's full scale (40 devices, R=1000, E=100).
func PaperOptions() Options { return experiment.PaperOptions() }

// NewSetup generates data, calibrates the convergence-bound constants, and
// assembles the CPL game for one of the paper's setups.
func NewSetup(id SetupID, opts Options) (*Environment, error) {
	return experiment.BuildSetup(id, opts)
}

// RunScheme prices the market with the scheme and trains the model under
// the induced participation levels.
func RunScheme(env *Environment, s Scheme) (*SchemeRun, error) {
	return experiment.RunScheme(env, s)
}

// CompareSchemes runs the proposed, weighted, and uniform pricing schemes
// on one environment — the paper's Fig. 4 comparison.
func CompareSchemes(env *Environment) (*Comparison, error) {
	return experiment.Compare(env)
}

// RunSweep reruns the mechanism (with retraining) across values of one
// parameter — the paper's Figs. 5–7.
func RunSweep(env *Environment, kind SweepKind, values []float64) ([]SweepPoint, error) {
	return experiment.Sweep(env, kind, values)
}

// EquilibriumSweep is RunSweep without retraining: equilibrium economics
// only (Table V).
func EquilibriumSweep(env *Environment, kind SweepKind, values []float64) ([]SweepPoint, error) {
	return experiment.EquilibriumSweep(env, kind, values)
}

// BoundFidelity measures how faithfully the Theorem-1 surrogate ranks real
// training outcomes across random participation profiles (DESIGN.md X6).
func BoundFidelity(env *Environment, profiles int, seed uint64) (*experiment.FidelityResult, error) {
	return experiment.BoundFidelity(env, profiles, seed)
}

// ConvergenceRate measures the empirical optimality gap across training
// horizons, validating Theorem 1's O(1/R) shape (DESIGN.md X9).
func ConvergenceRate(env *Environment, horizons []int, seed uint64) ([]experiment.GapPoint, error) {
	return experiment.ConvergenceRate(env, horizons, seed)
}
