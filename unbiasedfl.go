// Package unbiasedfl is the public façade of the reproduction of
// "Incentive Mechanism Design for Unbiased Federated Learning with
// Randomized Client Participation" (ICDCS 2023).
//
// The library implements the paper's Client Participation Level (CPL)
// Stackelberg game — a server that posts customized per-client prices under
// a budget and rational clients that respond with participation
// probabilities — together with every substrate it needs: an unbiased
// FedAvg-style training engine (Lemma 1), a Theorem-1 convergence-bound
// model, dataset generators, a hardware-prototype timing model, and a TCP
// socket prototype.
//
// # Sessions
//
// The primary entry point is the Session API: build one prepared world,
// then launch cancellable, observable experiments from it.
//
//	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
//	defer stop()
//
//	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1,
//		unbiasedfl.WithRuns(3),
//		unbiasedfl.WithSeed(7),
//		unbiasedfl.WithObserver(unbiasedfl.ObserverFunc(func(e unbiasedfl.Event) {
//			if r, ok := e.(unbiasedfl.RoundEnd); ok && r.Evaluated {
//				log.Printf("%s run %d round %d: loss %.4f", r.Scheme, r.Run, r.Round, r.Loss)
//			}
//		})))
//	...
//	eq, err := sess.Equilibrium()                            // the paper's mechanism
//	run, err := sess.RunScheme(ctx, unbiasedfl.SchemeNameProposed)
//	cmp, err := sess.CompareSchemes(ctx)                     // Fig. 4, over the registry
//
// Every long-running method takes a context.Context; cancelling it (Ctrl-C
// via signal.NotifyContext, a deadline, or an explicit cancel) stops
// training mid-round and sweeps mid-point, returning ctx.Err() promptly
// with no leaked goroutines.
//
// # Observers
//
// An Observer attached with WithObserver receives typed events — RoundStart
// and RoundEnd per training round (with loss/accuracy when evaluated),
// SchemeSolved when a pricing stage completes, SchemeDone per finished
// scheme, and SweepPointDone per sweep value. Events are delivered serially
// and in deterministic order, even where the work itself runs on a
// parallel worker pool.
//
// # The pricing registry
//
// The paper's three schemes (proposed, weighted, uniform) are built-ins of
// an open registry. Third-party mechanisms implement PricingScheme and join
// every comparison and sweep via RegisterScheme — no forking of the game
// internals:
//
//	type flat struct{}
//	func (flat) Name() string { return "flat" }
//	func (flat) Price(p *unbiasedfl.GameParams) (*unbiasedfl.Outcome, error) {
//		prices := make([]float64, p.N())
//		for i := range prices {
//			prices[i] = p.B / float64(p.N())
//		}
//		return p.OutcomeFor("flat", prices)
//	}
//	...
//	unbiasedfl.RegisterScheme(flat{})
//	cmp, err := sess.CompareSchemes(ctx) // now four schemes
//
// # Migration from the v0 API
//
// The original blocking entry points remain, now context-aware: NewSetup,
// RunScheme, CompareSchemes, RunSweep, EquilibriumSweep, BoundFidelity, and
// ConvergenceRate take a context.Context as their first argument. The
// Scheme enum constants (SchemeOptimal, SchemeUniform, SchemeWeighted) are
// deprecated aliases of the built-in registry entries; new code should
// address schemes by name (SchemeNameProposed, ...) through a Session.
//
// See examples/ for runnable programs and README.md for the mapping from
// the paper's tables and figures to the benchmark harness (bench_test.go
// and cmd/flbench).
package unbiasedfl

import (
	"context"

	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/sim"
)

// Game-layer types: the paper's primary contribution.
type (
	// GameParams holds every constant of the CPL game (Section III).
	GameParams = game.Params
	// Equilibrium is a solved Stackelberg equilibrium (Section V).
	Equilibrium = game.Equilibrium
	// Scheme identifies a built-in pricing strategy.
	//
	// Deprecated: address schemes by registry name (SchemeNameProposed,
	// SchemeNameUniform, SchemeNameWeighted, or any RegisterScheme name).
	Scheme = game.Scheme
	// Outcome is a priced market state under some scheme.
	Outcome = game.Outcome
	// Prior is the server's belief over private client parameters for the
	// Bayesian incomplete-information extension (DESIGN.md X1).
	Prior = game.Prior
	// BayesianOutcome is a posted-price design under incomplete information.
	BayesianOutcome = game.BayesianOutcome
	// Sensitivity holds the equilibrium's comparative statics (DESIGN.md X5).
	Sensitivity = game.Sensitivity
	// CostComponents prices device resources for the decoupled cost model
	// (DESIGN.md X2).
	CostComponents = game.CostComponents
	// DeviceProfile is a device's measured per-round resource usage.
	DeviceProfile = game.DeviceProfile
	// Solver is the reusable fleet-scale equilibrium engine: caller-owned
	// scratch (zero allocations per solve in steady state) and warm-started
	// multiplier brackets, bit-identical to cold SolveKKT solves.
	Solver = game.Solver
	// EquilibriumCache memoizes equilibrium solves and scheme pricings by
	// game fingerprint; every Session environment carries one.
	EquilibriumCache = game.Cache
	// BatchError reports which game of a SolveMany batch failed.
	BatchError = game.BatchError
)

// NewSolver returns a reusable equilibrium engine; see Solver.
func NewSolver() *Solver { return game.NewSolver() }

// NewEquilibriumCache returns an equilibrium memo-cache holding at most max
// solved games (max <= 0 selects the default capacity).
func NewEquilibriumCache(max int) *EquilibriumCache { return game.NewCache(max) }

// SolveMany batch-solves a slice of games across a fixed-order worker pool
// with per-worker scratch and warm starts (workers <= 0 means GOMAXPROCS).
// Results are bit-identical to a sequential SolveKKT loop for any worker
// count.
func SolveMany(games []*GameParams, workers int) ([]*Equilibrium, error) {
	return game.SolveMany(games, workers)
}

// Deprecated enum aliases for the built-in pricing schemes. They keep old
// call sites compiling; the registry names are the canonical identities.
const (
	// SchemeOptimal is the paper's customized equilibrium pricing.
	//
	// Deprecated: use SchemeNameProposed.
	SchemeOptimal = game.SchemeOptimal
	// SchemeUniform pays every client the same unit price.
	//
	// Deprecated: use SchemeNameUniform.
	SchemeUniform = game.SchemeUniform
	// SchemeWeighted pays proportionally to data size.
	//
	// Deprecated: use SchemeNameWeighted.
	SchemeWeighted = game.SchemeWeighted
)

// Experiment-layer types: the paper's evaluation section.
type (
	// SetupID selects one of the paper's three experimental setups.
	SetupID = experiment.SetupID
	// Options scales an experiment (DefaultOptions or PaperOptions);
	// Sessions configure it through functional options (WithRuns, ...).
	Options = experiment.Options
	// Environment is a fully-prepared experimental world.
	Environment = experiment.Environment
	// SchemeRun is a pricing scheme's full outcome: market + training.
	SchemeRun = experiment.SchemeRun
	// Comparison bundles every registered scheme's run on one environment.
	Comparison = experiment.Comparison
	// SweepKind selects a swept parameter for the Figs. 5–7 studies.
	SweepKind = experiment.SweepKind
	// SweepPoint is one sweep value's result.
	SweepPoint = experiment.SweepPoint
	// FidelityResult is BoundFidelity's rank-agreement report.
	FidelityResult = experiment.FidelityResult
	// GapPoint is one ConvergenceRate horizon's optimality gap.
	GapPoint = experiment.GapPoint
	// Backend selects the execution substrate for training runs — the
	// unified federation engine runs the same round protocol on all of
	// them, bit-identically. Configure it per session via WithBackend or
	// per scenario via RunScenarioWith.
	Backend = experiment.Backend
)

// The paper's Table-I setups.
const (
	// Setup1 uses the Synthetic(1,1) dataset (B=200, c̄=50, v̄=4000).
	Setup1 = experiment.Setup1
	// Setup2 uses the MNIST-like dataset (B=40, c̄=20, v̄=30000).
	Setup2 = experiment.Setup2
	// Setup3 uses the EMNIST-like dataset (B=500, c̄=80, v̄=10000).
	Setup3 = experiment.Setup3
)

// Execution backends for the unified federation engine.
const (
	// BackendLocal runs local updates in-process through the engine's
	// zero-alloc worker pool (the default).
	BackendLocal = experiment.BackendLocal
	// BackendCluster runs each client as a real TCP socket node on
	// loopback.
	BackendCluster = experiment.BackendCluster
)

// ParseBackend maps a command-line backend name ("local", "cluster") to a
// Backend.
func ParseBackend(name string) (Backend, error) { return experiment.ParseBackend(name) }

// Swept parameters for the impact studies.
const (
	// SweepV varies the mean intrinsic value (Fig. 5).
	SweepV = experiment.SweepV
	// SweepC varies the mean local cost (Fig. 6).
	SweepC = experiment.SweepC
	// SweepB varies the server budget (Fig. 7).
	SweepB = experiment.SweepB
)

// Training-layer types re-exported for custom pipelines.
type (
	// TrainConfig is the FL loop configuration.
	TrainConfig = fl.Config
	// Runner executes federated training (Runner.RunContext for
	// cancellable runs).
	Runner = fl.Runner
	// UnbiasedAggregator implements Lemma 1's aggregation rule.
	UnbiasedAggregator = fl.UnbiasedAggregator
	// TimedPoint is a wall-clock-stamped loss/accuracy sample.
	TimedPoint = sim.TimedPoint
)

// DefaultOptions returns the laptop-scale experiment configuration.
func DefaultOptions() Options { return experiment.DefaultOptions() }

// PaperOptions returns the paper's full scale (40 devices, R=1000, E=100).
func PaperOptions() Options { return experiment.PaperOptions() }

// NewSetup generates data, calibrates the convergence-bound constants, and
// assembles the CPL game for one of the paper's setups. Prefer NewSession,
// which wraps the Environment with observers and functional options.
func NewSetup(ctx context.Context, id SetupID, opts Options) (*Environment, error) {
	return experiment.BuildSetup(ctx, id, opts)
}

// RunScheme prices the market with the named registered scheme and trains
// the model under the induced participation levels. Optional observers
// stream per-round progress.
func RunScheme(ctx context.Context, env *Environment, scheme string, obs ...Observer) (*SchemeRun, error) {
	return experiment.RunScheme(ctx, env, scheme, obs...)
}

// CompareSchemes runs every registered pricing scheme on one environment —
// the paper's Fig. 4 comparison (proposed, weighted, uniform) plus any
// scheme added via RegisterScheme.
func CompareSchemes(ctx context.Context, env *Environment, obs ...Observer) (*Comparison, error) {
	return experiment.Compare(ctx, env, obs...)
}

// RunSweep reruns the proposed mechanism (with retraining) across values of
// one parameter — the paper's Figs. 5–7. Use Session.RunSweep with
// WithSweepScheme to sweep under a different registered scheme.
func RunSweep(ctx context.Context, env *Environment, kind SweepKind, values []float64, obs ...Observer) ([]SweepPoint, error) {
	return experiment.Sweep(ctx, env, kind, values, obs...)
}

// EquilibriumSweep is RunSweep without retraining: equilibrium economics
// only (Table V).
func EquilibriumSweep(ctx context.Context, env *Environment, kind SweepKind, values []float64, obs ...Observer) ([]SweepPoint, error) {
	return experiment.EquilibriumSweep(ctx, env, kind, values, obs...)
}

// BoundFidelity measures how faithfully the Theorem-1 surrogate ranks real
// training outcomes across random participation profiles (DESIGN.md X6).
func BoundFidelity(ctx context.Context, env *Environment, profiles int, seed uint64) (*FidelityResult, error) {
	return experiment.BoundFidelity(ctx, env, profiles, seed)
}

// ConvergenceRate measures the empirical optimality gap across training
// horizons, validating Theorem 1's O(1/R) shape (DESIGN.md X9).
func ConvergenceRate(ctx context.Context, env *Environment, horizons []int, seed uint64) ([]GapPoint, error) {
	return experiment.ConvergenceRate(ctx, env, horizons, seed)
}
