package unbiasedfl_test

import (
	"context"
	"fmt"

	"unbiasedfl"
)

// Example demonstrates the one-call path from a paper setup to its
// Stackelberg equilibrium.
func Example() {
	opts := unbiasedfl.Options{
		NumClients:   4,
		TotalSamples: 400,
		Rounds:       20,
		LocalSteps:   4,
		BatchSize:    16,
		EvalEvery:    5,
		Calibration:  2,
		Seed:         1,
		Runs:         1,
	}
	env, err := unbiasedfl.NewSetup(context.Background(), unbiasedfl.Setup1, opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	eq, err := env.Params.SolveKKT()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("clients priced: %d\n", len(eq.P))
	fmt.Printf("spend within budget: %v\n", eq.Spent <= env.Params.B+1e-9)
	// Output:
	// clients priced: 4
	// spend within budget: true
}
