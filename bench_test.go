// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI), plus ablations of the design choices called out in
// DESIGN.md. Each benchmark reports the headline metric of its artifact via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction run; README.md maps the paper's artifacts to this harness.
//
// Benchmarks run at laptop scale (see benchOptions); pass the paper's scale
// through cmd/flbench -paper for the full-size reproduction.
package unbiasedfl_test

import (
	"context"
	"strconv"
	"testing"

	"unbiasedfl"
	"unbiasedfl/internal/experiment"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
)

// benchOptions keeps each artifact's regeneration in the seconds range.
func benchOptions() unbiasedfl.Options {
	return unbiasedfl.Options{
		NumClients:   8,
		TotalSamples: 1600,
		Rounds:       60,
		LocalSteps:   8,
		BatchSize:    16,
		EvalEvery:    5,
		Calibration:  2,
		Seed:         1,
		Runs:         1,
	}
}

func buildEnv(b *testing.B, id unbiasedfl.SetupID) *unbiasedfl.Environment {
	b.Helper()
	env, err := unbiasedfl.NewSetup(context.Background(), id, benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// benchFig4 regenerates one setup's Fig. 4 panel: all three pricing schemes
// trained under the same budget. Reports the proposed scheme's final loss.
func benchFig4(b *testing.B, id unbiasedfl.SetupID) {
	env := buildEnv(b, id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := unbiasedfl.CompareSchemes(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.Schemes[0].FinalLoss, "proposed-final-loss")
		b.ReportMetric(cmp.Schemes[0].FinalAccuracy, "proposed-final-acc")
	}
}

func BenchmarkFig4Setup1(b *testing.B) { benchFig4(b, unbiasedfl.Setup1) }
func BenchmarkFig4Setup2(b *testing.B) { benchFig4(b, unbiasedfl.Setup2) }
func BenchmarkFig4Setup3(b *testing.B) { benchFig4(b, unbiasedfl.Setup3) }

// BenchmarkTable2 regenerates the time-to-target-loss rows. Reports the
// proposed scheme's saving over uniform pricing as a percentage (the paper
// reports 21–53% at its scale).
func BenchmarkTable2(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := unbiasedfl.CompareSchemes(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		rows := cmp.TimesToLoss(cmp.AdaptiveLossTarget())
		if rows[0].OK && rows[2].OK && rows[2].Elapsed > 0 {
			saving := 1 - rows[0].Elapsed.Seconds()/rows[2].Elapsed.Seconds()
			b.ReportMetric(saving*100, "saving-vs-uniform-%")
		}
	}
}

// BenchmarkTable3 regenerates the time-to-target-accuracy rows (the paper's
// headline: 69% less time than uniform pricing on MNIST). At laptop scale
// the MNIST-like task saturates too quickly to separate schemes, so the
// bench uses the harder EMNIST-like setup; see README.md.
func BenchmarkTable3(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := unbiasedfl.CompareSchemes(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		rows := cmp.TimesToAccuracy(cmp.AdaptiveAccuracyTarget())
		if rows[0].OK && rows[2].OK && rows[2].Elapsed > 0 {
			saving := 1 - rows[0].Elapsed.Seconds()/rows[2].Elapsed.Seconds()
			b.ReportMetric(saving*100, "saving-vs-uniform-%")
		}
	}
}

// BenchmarkTable4 regenerates the total client-utility gains.
func BenchmarkTable4(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := unbiasedfl.CompareSchemes(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		overU, overW, err := cmp.UtilityGains()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(overU, "gain-over-uniform")
		b.ReportMetric(overW, "gain-over-weighted")
	}
}

// BenchmarkTable5 regenerates the negative-payment counts vs mean intrinsic
// value on Setup 1.
func BenchmarkTable5(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := unbiasedfl.EquilibriumSweep(context.Background(), env, unbiasedfl.SweepV,
			[]float64{0, 4000, 80000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(points[0].NegativePayments), "neg-payments-v0")
		b.ReportMetric(float64(points[1].NegativePayments), "neg-payments-v4000")
		b.ReportMetric(float64(points[2].NegativePayments), "neg-payments-v80000")
	}
}

// BenchmarkFig5 regenerates the intrinsic-value impact study (Setup 1).
func BenchmarkFig5(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := unbiasedfl.RunSweep(context.Background(), env, unbiasedfl.SweepV,
			[]float64{1000, 4000, 16000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].FinalLoss, "loss-low-v")
		b.ReportMetric(points[len(points)-1].FinalLoss, "loss-high-v")
	}
}

// BenchmarkFig6 regenerates the local-cost impact study (Setup 2).
func BenchmarkFig6(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := unbiasedfl.RunSweep(context.Background(), env, unbiasedfl.SweepC,
			[]float64{10, 20, 60})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].FinalLoss, "loss-low-c")
		b.ReportMetric(points[len(points)-1].FinalLoss, "loss-high-c")
	}
}

// BenchmarkFig7 regenerates the budget impact study (Setup 3).
func BenchmarkFig7(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := unbiasedfl.RunSweep(context.Background(), env, unbiasedfl.SweepB,
			[]float64{125, 500, 2000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].FinalLoss, "loss-low-B")
		b.ReportMetric(points[len(points)-1].FinalLoss, "loss-high-B")
	}
}

// BenchmarkAblationAggregation compares Lemma 1's unbiased aggregation with
// the biased proportional rule and the naive inverse-weighting the paper
// warns about, under the same skewed participation levels.
func BenchmarkAblationAggregation(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup2)
	q := make([]float64, env.Fed.NumClients())
	for i := range q {
		q[i] = 0.1
		if i%3 == 0 {
			q[i] = 0.9
		}
	}
	aggs := map[string]fl.Aggregator{
		"unbiased-lemma1":     fl.UnbiasedAggregator{},
		"biased-proportional": fl.ProportionalAggregator{},
		"naive-inverse":       fl.NaiveInverseAggregator{},
	}
	for name, agg := range aggs {
		agg := agg
		b.Run(name, func(b *testing.B) {
			var lossSum float64
			for i := 0; i < b.N; i++ {
				// Fixed seeds: the reported metric is an average over
				// iterations of a deterministic configuration, not the last
				// draw of a varying one.
				sampler, err := fl.NewBernoulliSampler(q, stats.NewRNG(5))
				if err != nil {
					b.Fatal(err)
				}
				cfg := fl.Config{
					Rounds: 50, LocalSteps: 8, BatchSize: 16,
					Schedule:  fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
					EvalEvery: 50, Seed: 99,
				}
				runner := &fl.Runner{
					Model: env.Model, Fed: env.Fed, Config: cfg,
					Sampler: sampler, Aggregator: agg, Parallel: true,
				}
				res, err := runner.Run()
				if err != nil {
					b.Fatal(err)
				}
				lossSum += res.FinalLoss
			}
			b.ReportMetric(lossSum/float64(b.N), "final-loss")
		})
	}
}

// BenchmarkAblationQuantityPricing contrasts the paper's G_n-aware optimal
// pricing with pricing computed as if every client had identical gradient
// heterogeneity (pure data-quantity pricing). The bound attained by the
// quantity-blind levels is evaluated under the true G_n.
func BenchmarkAblationQuantityPricing(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup1)
	blind := env.Params.Clone()
	var meanG float64
	for _, g := range env.Params.G {
		meanG += g / float64(len(env.Params.G))
	}
	for i := range blind.G {
		blind.G[i] = meanG
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aware, err := env.Params.SolveKKT()
		if err != nil {
			b.Fatal(err)
		}
		blindEq, err := blind.SolveKKT()
		if err != nil {
			b.Fatal(err)
		}
		// The server posts the blind prices, but clients best-respond with
		// their true G_n; the attained bound and spend are evaluated under
		// the true parameters.
		trueQ, err := env.Params.BestResponseAll(blindEq.P)
		if err != nil {
			b.Fatal(err)
		}
		for j, q := range trueQ {
			if q < env.Params.QMin {
				trueQ[j] = env.Params.QMin
			}
		}
		blindObj, err := env.Params.ServerObjective(trueQ)
		if err != nil {
			b.Fatal(err)
		}
		blindSpend, err := game.TotalPayment(blindEq.P, trueQ)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(aware.ServerObj, "bound-Gn-aware")
		b.ReportMetric(blindObj, "bound-quantity-only")
		b.ReportMetric(blindSpend-aware.Spent, "overspend-vs-aware")
	}
}

// BenchmarkAblationFixedSubset contrasts the paper's randomized full-fleet
// participation with the deterministic fixed-subset mechanisms of prior
// work: training only the top-K largest clients forever yields a biased
// model whose pooled loss stalls above the unbiased one.
func BenchmarkAblationFixedSubset(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup2)
	n := env.Fed.NumClients()
	// Top half of clients by data size.
	subset := make([]int, 0, n/2)
	for i := 0; i < n; i++ {
		if env.Fed.Weights[i] >= medianWeight(env.Fed.Weights) {
			subset = append(subset, i)
		}
	}
	cfgFor := func(seed uint64) fl.Config {
		return fl.Config{
			Rounds: 50, LocalSteps: 8, BatchSize: 16,
			Schedule:  fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
			EvalEvery: 50, Seed: seed,
		}
	}
	b.Run("fixed-subset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sampler, err := fl.NewFixedSubsetSampler(subset, n)
			if err != nil {
				b.Fatal(err)
			}
			runner := &fl.Runner{
				Model: env.Model, Fed: env.Fed, Config: cfgFor(uint64(i) + 3),
				Sampler: sampler, Aggregator: fl.ProportionalAggregator{}, Parallel: true,
			}
			res, err := runner.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.FinalLoss, "final-loss")
		}
	})
	b.Run("randomized-unbiased", func(b *testing.B) {
		q := make([]float64, n)
		for i := range q {
			q[i] = float64(len(subset)) / float64(n) // same expected load
		}
		for i := 0; i < b.N; i++ {
			sampler, err := fl.NewBernoulliSampler(q, stats.NewRNG(uint64(i)+17))
			if err != nil {
				b.Fatal(err)
			}
			runner := &fl.Runner{
				Model: env.Model, Fed: env.Fed, Config: cfgFor(uint64(i) + 4),
				Sampler: sampler, Aggregator: fl.UnbiasedAggregator{}, Parallel: true,
			}
			res, err := runner.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.FinalLoss, "final-loss")
		}
	})
}

// BenchmarkAblationSolvers compares the exact KKT bisection against the
// paper's M-parameterized line-search method on the same game.
func BenchmarkAblationSolvers(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup1)
	b.Run("kkt-bisection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eq, err := env.Params.SolveKKT()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(eq.ServerObj, "bound")
		}
	})
	b.Run("m-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eq, err := env.Params.SolveMSearch(game.DefaultMSearchOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(eq.ServerObj, "bound")
		}
	})
}

// BenchmarkExtensionBayesian measures the future-work Bayesian mechanism:
// the realized bound of posted prices designed from the prior alone,
// against the complete-information equilibrium (the price of incomplete
// information).
func BenchmarkExtensionBayesian(b *testing.B) {
	env := buildEnv(b, unbiasedfl.Setup1)
	prior := game.Prior{MeanC: env.MeanC, MeanV: env.MeanV}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		complete, err := env.Params.SolveKKT()
		if err != nil {
			b.Fatal(err)
		}
		bayes, err := env.Params.SolveBayesian(prior, 400, stats.NewRNG(uint64(i)+11))
		if err != nil {
			b.Fatal(err)
		}
		_, _, obj, err := env.Params.EvaluateRealized(bayes.P)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(complete.ServerObj, "bound-complete-info")
		b.ReportMetric(obj, "bound-bayesian")
	}
}

// BenchmarkBoundFidelity measures how faithfully the Theorem-1 surrogate
// ranks real training outcomes (Kendall tau over random q profiles).
func BenchmarkBoundFidelity(b *testing.B) {
	opts := benchOptions()
	opts.Rounds = 30
	env, err := unbiasedfl.NewSetup(context.Background(), unbiasedfl.Setup2, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var tauSum float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.BoundFidelity(context.Background(), env, 6, 123)
		if err != nil {
			b.Fatal(err)
		}
		tauSum += res.KendallTau
	}
	b.ReportMetric(tauSum/float64(b.N), "kendall-tau")
}

// BenchmarkConvergenceRate measures the empirical Theorem-1 decay: the
// fitted exponent of gap ≈ C·R^p should be negative (≈ −1 in the
// variance-dominated regime).
func BenchmarkConvergenceRate(b *testing.B) {
	opts := benchOptions()
	opts.Rounds = 40
	env, err := unbiasedfl.NewSetup(context.Background(), unbiasedfl.Setup2, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := experiment.ConvergenceRate(context.Background(), env, []int{10, 40, 160}, uint64(i)+5)
		if err != nil {
			b.Fatal(err)
		}
		p, err := experiment.FitRateExponent(points)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p, "rate-exponent")
	}
}

// BenchmarkExtensionAdaptiveRepricing measures static vs per-epoch adaptive
// pricing as the G_n estimates drift during training (DESIGN.md X10). The
// static arm's realized spend drifts off budget; the adaptive arm's stays on
// it by construction.
func BenchmarkExtensionAdaptiveRepricing(b *testing.B) {
	opts := benchOptions()
	opts.Rounds = 40
	env, err := unbiasedfl.NewSetup(context.Background(), unbiasedfl.Setup2, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAdaptive(context.Background(), env, 4, 9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.StaticSpend, "static-drifted-spend")
		b.ReportMetric(res.AdaptiveSpend, "adaptive-spend")
		b.ReportMetric(res.AdaptiveLoss, "adaptive-final-loss")
	}
}

// BenchmarkEquilibriumSolve measures the raw KKT solver across fleet sizes
// (microbenchmark for the mechanism itself): one cold solve per iteration,
// a reused warm engine, and a batched sweep over nearby budgets. The
// internal/game package carries the finer-grained engine benchmarks behind
// BENCH_PR3.json.
func BenchmarkEquilibriumSolve(b *testing.B) {
	for _, n := range []int{10, 40, 160, 640} {
		n := n
		b.Run(itoa(n), func(b *testing.B) {
			p := syntheticGame(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.SolveKKT(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("warm-640-clients", func(b *testing.B) {
		p := syntheticGame(b, 640)
		s := unbiasedfl.NewSolver()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("solve-many-640-clients", func(b *testing.B) {
		base := syntheticGame(b, 640)
		games := make([]*unbiasedfl.GameParams, 32)
		for i := range games {
			g := base.Clone()
			g.B = base.B * (0.9 + 0.2*float64(i)/31)
			games[i] = g
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := unbiasedfl.SolveMany(games, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func syntheticGame(b *testing.B, n int) *game.Params {
	b.Helper()
	r := stats.NewRNG(uint64(n))
	a := make([]float64, n)
	var sum float64
	for i := range a {
		a[i] = 0.5 + r.Float64()
		sum += a[i]
	}
	for i := range a {
		a[i] /= sum
	}
	g, err := stats.UniformRange(r, n, 1, 20)
	if err != nil {
		b.Fatal(err)
	}
	c, err := stats.UniformRange(r, n, 10, 100)
	if err != nil {
		b.Fatal(err)
	}
	v, err := stats.UniformRange(r, n, 0, 8000)
	if err != nil {
		b.Fatal(err)
	}
	return &game.Params{
		A: a, G: g, C: c, V: v,
		Alpha: 1, R: 1000, B: 200, QMax: 1, QMin: game.DefaultQMin,
	}
}

func medianWeight(w []float64) float64 {
	m, err := stats.Quantile(w, 0.5)
	if err != nil {
		return 0
	}
	return m
}

func itoa(n int) string { return strconv.Itoa(n) + "-clients" }
