package unbiasedfl_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"unbiasedfl"
)

// premiumScheme is a third-party pricing mechanism defined entirely outside
// internal/game: it pays a flat premium proportional to each client's
// gradient-quality estimate and lets the game evaluate the responses.
type premiumScheme struct{}

func (premiumScheme) Name() string { return "premium" }

func (premiumScheme) Price(p *unbiasedfl.GameParams) (*unbiasedfl.Outcome, error) {
	prices := make([]float64, p.N())
	for i := range prices {
		prices[i] = p.B * p.G[i] / float64(p.N()) / 10
	}
	return p.OutcomeFor("premium", prices)
}

// TestThirdPartySchemeViaPublicAPI is the acceptance criterion end-to-end:
// a scheme registered through the façade participates in CompareSchemes and
// RunSweep with no internal/game changes.
func TestThirdPartySchemeViaPublicAPI(t *testing.T) {
	ctx := context.Background()
	if err := unbiasedfl.RegisterScheme(premiumScheme{}); err != nil {
		t.Fatal(err)
	}
	defer unbiasedfl.UnregisterScheme("premium")

	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1,
		append(tinyFacadeOptions(),
			unbiasedfl.WithRounds(10),
			unbiasedfl.WithSweepScheme("premium"))...)
	if err != nil {
		t.Fatal(err)
	}

	cmp, err := sess.CompareSchemes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Schemes) != 4 {
		t.Fatalf("schemes %d, want builtin trio + premium", len(cmp.Schemes))
	}
	premium := cmp.Scheme("premium")
	if premium == nil || premium.FinalLoss <= 0 {
		t.Fatalf("premium scheme did not train: %+v", premium)
	}

	// RunSweep retrains under the session's sweep scheme — the third-party
	// one, via WithSweepScheme.
	points, err := sess.RunSweep(ctx, unbiasedfl.SweepB, []float64{20, 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].FinalLoss <= 0 {
		t.Fatalf("sweep under premium: %+v", points)
	}

	// Individual runs address it by name too.
	run, err := sess.RunScheme(ctx, "premium")
	if err != nil {
		t.Fatal(err)
	}
	if run.Scheme != "premium" {
		t.Fatalf("scheme name %q", run.Scheme)
	}
}

// TestSessionUnknownSweepScheme rejects a bad WithSweepScheme up front.
func TestSessionUnknownSweepScheme(t *testing.T) {
	_, err := unbiasedfl.NewSession(context.Background(), unbiasedfl.Setup1,
		append(tinyFacadeOptions(), unbiasedfl.WithSweepScheme("no-such"))...)
	if err == nil {
		t.Fatal("expected unknown-scheme error")
	}
}

// TestSessionCancellation is the façade-level cancellation check: a running
// comparison stops promptly with ctx.Err().
func TestSessionCancellation(t *testing.T) {
	sess, err := unbiasedfl.NewSession(context.Background(), unbiasedfl.Setup1,
		append(tinyFacadeOptions(), unbiasedfl.WithRounds(100000))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sess.CompareSchemes(ctx)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("comparison did not stop after cancellation")
	}
}

// TestSessionObserverStream smoke-tests the façade observer wiring and its
// determinism across identical sessions.
func TestSessionObserverStream(t *testing.T) {
	ctx := context.Background()
	stream := func() []string {
		var events []string
		sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1,
			append(tinyFacadeOptions(),
				unbiasedfl.WithRounds(10),
				unbiasedfl.WithObserver(unbiasedfl.ObserverFunc(func(e unbiasedfl.Event) {
					switch ev := e.(type) {
					case unbiasedfl.SchemeSolved:
						events = append(events, "solved:"+ev.Scheme)
					case unbiasedfl.RoundEnd:
						events = append(events, fmt.Sprintf("round:%s:%d:%.9f", ev.Scheme, ev.Round, ev.Loss))
					case unbiasedfl.SchemeDone:
						events = append(events, "done:"+ev.Scheme)
					case unbiasedfl.SweepPointDone:
						events = append(events, fmt.Sprintf("sweep:%d:%.0f", ev.Index, ev.Value))
					}
				})))...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.RunScheme(ctx, unbiasedfl.SchemeNameProposed); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.EquilibriumSweep(ctx, unbiasedfl.SweepV, []float64{1000, 4000}); err != nil {
			t.Fatal(err)
		}
		return events
	}
	a := stream()
	if len(a) == 0 {
		t.Fatal("no events")
	}
	b := stream()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event streams differ:\n  a: %v\n  b: %v", a, b)
	}
}

// TestSessionBackendEquivalence is the façade-level backend contract: the
// same session configuration run on the in-process backend and on the TCP
// cluster backend must produce bit-identical scheme results — the unified
// engine runs one round protocol on both.
func TestSessionBackendEquivalence(t *testing.T) {
	ctx := context.Background()
	run := func(b unbiasedfl.Backend) *unbiasedfl.SchemeRun {
		sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup2,
			unbiasedfl.WithClients(4),
			unbiasedfl.WithTotalSamples(400),
			unbiasedfl.WithRounds(8),
			unbiasedfl.WithLocalSteps(2),
			unbiasedfl.WithRuns(1),
			unbiasedfl.WithBackend(b),
		)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sess.RunScheme(ctx, unbiasedfl.SchemeNameProposed)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	local := run(unbiasedfl.BackendLocal)
	cluster := run(unbiasedfl.BackendCluster)
	if local.FinalLoss != cluster.FinalLoss || local.FinalAccuracy != cluster.FinalAccuracy {
		t.Fatalf("backends disagree: local loss/acc %v/%v, cluster %v/%v",
			local.FinalLoss, local.FinalAccuracy, cluster.FinalLoss, cluster.FinalAccuracy)
	}
	if !reflect.DeepEqual(local.Points, cluster.Points) {
		t.Fatal("timed trajectories differ across backends")
	}
}
