// Incomplete information: the paper's future-work extension. The server no
// longer observes each client's private cost c_n and intrinsic value v_n —
// only their prior distributions — and designs Bayesian posted prices via a
// certainty-equivalent KKT solve calibrated by Monte Carlo to meet the
// budget in expectation. The example quantifies the price of incomplete
// information against the complete-information equilibrium and the uniform
// posted-price fallback.
package main

import (
	"context"
	"fmt"
	"os"

	"unbiasedfl"
	"unbiasedfl/internal/game"
	"unbiasedfl/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "incomplete_info:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1,
		unbiasedfl.WithClients(16))
	if err != nil {
		return err
	}
	env := sess.Environment()
	p := env.Params

	// Complete information: the paper's mechanism.
	complete, err := p.SolveKKT()
	if err != nil {
		return err
	}

	// Incomplete information: Bayesian posted prices from the prior only.
	prior := game.Prior{MeanC: env.MeanC, MeanV: env.MeanV}
	bayes, err := p.SolveBayesian(prior, 800, stats.NewRNG(42))
	if err != nil {
		return err
	}
	_, bSpend, bObj, err := p.EvaluateRealized(bayes.P)
	if err != nil {
		return err
	}

	// Uniform posted price: the least-informed fallback, resolved through
	// the open pricing registry.
	uniScheme, err := unbiasedfl.SchemeByName(unbiasedfl.SchemeNameUniform)
	if err != nil {
		return err
	}
	uni, err := uniScheme.Price(p)
	if err != nil {
		return err
	}

	fmt.Printf("price of incomplete information on %v (N=%d, B=%.1f)\n\n",
		env.ID, p.N(), p.B)
	fmt.Println("design                    | realized bound g(q) | realized spend")
	fmt.Println("--------------------------+---------------------+---------------")
	fmt.Printf("complete information (SE) | %19.6g | %14.2f\n", complete.ServerObj, complete.Spent)
	fmt.Printf("bayesian posted prices    | %19.6g | %14.2f\n", bObj, bSpend)
	fmt.Printf("uniform posted price      | %19.6g | %14.2f\n", uni.ServerObj, uni.Spent)

	fmt.Printf("\nbayesian expected spend (calibrated): %.2f of budget %.2f over %d scenarios\n",
		bayes.ExpectedSpend, p.B, bayes.Scenarios)
	fmt.Printf("cost of incomplete information: %.1f%% worse bound than complete information\n",
		100*(bObj/complete.ServerObj-1))
	if bObj <= uni.ServerObj {
		fmt.Println("the Bayesian design recovers part of the gap: it beats uniform pricing")
	} else {
		fmt.Println("note: uniform pricing happened to win at this draw (possible when the")
		fmt.Println("realized spend of the Bayesian design lands under budget)")
	}
	return nil
}
