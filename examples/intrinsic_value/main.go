// Intrinsic value and bi-directional payment: demonstrate Theorem 3 and
// Table V. As clients' intrinsic value for the global model grows, the
// equilibrium prices of high-value clients cross zero — they start paying
// the server for the right to participate — and the threshold v_t = 1/(3λ*)
// separates the two directions exactly.
package main

import (
	"context"
	"fmt"
	"os"

	"unbiasedfl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "intrinsic_value:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1,
		unbiasedfl.WithClients(12))
	if err != nil {
		return err
	}
	env := sess.Environment()

	// Table V's sweep: negative-payment counts vs mean intrinsic value.
	fmt.Println("Table V reproduction — negative payments vs mean intrinsic value:")
	points, err := sess.EquilibriumSweep(ctx, unbiasedfl.SweepV,
		[]float64{0, 1000, 4000, 16000, 80000})
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Printf("  mean v = %7.0f -> %2d of %d clients pay the server (mean q = %.3f)\n",
			p.Value, p.NegativePayments, env.Fed.NumClients(), p.MeanQ)
	}

	// Zoom into one equilibrium and verify the threshold classification.
	eq, err := sess.Equilibrium()
	if err != nil {
		return err
	}
	vt := eq.Vt()
	fmt.Printf("\nat the Table-I point (mean v = %.0f): v_t = %.4g\n", env.MeanV, vt)
	fmt.Println("client |       v_n | side of v_t |     P*_n | direction")
	fmt.Println("-------+-----------+-------------+----------+---------------------")
	for n := range eq.P {
		side := "below"
		if env.Params.V[n] > vt {
			side = "ABOVE"
		}
		dir := "server pays client"
		if eq.P[n] < 0 {
			dir = "client pays server"
		}
		fmt.Printf("%6d | %9.1f | %-11s | %8.3f | %s\n",
			n, env.Params.V[n], side, eq.P[n], dir)
	}
	if err := env.Params.VerifyTheorem3(eq); err != nil {
		return fmt.Errorf("theorem 3 violated: %w", err)
	}
	fmt.Println("\nTheorem 3 verified: the sign of every interior price matches its side of v_t")
	return nil
}
