// Pricing comparison: reproduce the paper's headline experiment (Fig. 4 and
// Tables II–IV) on one setup — the proposed customized pricing versus
// uniform and data-size-weighted pricing under the same budget.
package main

import (
	"flag"
	"fmt"
	"os"

	"unbiasedfl"
	"unbiasedfl/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pricing_comparison:", err)
		os.Exit(1)
	}
}

func run() error {
	setup := flag.Int("setup", 2, "experimental setup (1, 2, or 3)")
	flag.Parse()

	opts := unbiasedfl.DefaultOptions()
	opts.NumClients = 10
	opts.Rounds = 80
	opts.Runs = 2
	env, err := unbiasedfl.NewSetup(unbiasedfl.SetupID(*setup), opts)
	if err != nil {
		return err
	}
	fmt.Printf("comparing pricing schemes on %v (budget %.1f)\n\n", env.ID, env.Params.B)

	cmp, err := unbiasedfl.CompareSchemes(env)
	if err != nil {
		return err
	}

	// Scheme-level economics.
	fmt.Println("scheme   | bound g(q)   | spent   | client utility | P<0")
	fmt.Println("---------+--------------+---------+----------------+----")
	for _, s := range cmp.Schemes {
		fmt.Printf("%-8v | %12.5g | %7.2f | %14.2f | %3d\n",
			s.Scheme, s.Outcome.ServerObj, s.Outcome.Spent,
			s.TotalClientUtility, s.NegativePayments)
	}

	// Time-to-target rows (Tables II and III).
	lossTarget := cmp.AdaptiveLossTarget()
	accTarget := cmp.AdaptiveAccuracyTarget()
	fmt.Printf("\ntime to loss <= %.4f and accuracy >= %.4f:\n", lossTarget, accTarget)
	tl := cmp.TimesToLoss(lossTarget)
	ta := cmp.TimesToAccuracy(accTarget)
	for i := range tl {
		lossStr, accStr := "never", "never"
		if tl[i].OK {
			lossStr = fmt.Sprintf("%.1fs", tl[i].Elapsed.Seconds())
		}
		if ta[i].OK {
			accStr = fmt.Sprintf("%.1fs", ta[i].Elapsed.Seconds())
		}
		fmt.Printf("  %-8v loss: %-8s accuracy: %s\n", tl[i].Scheme, lossStr, accStr)
	}

	// Savings headline, as the paper reports ("69% less time than uniform").
	if tl[0].OK && tl[2].OK && tl[2].Elapsed > 0 {
		saving := 1 - tl[0].Elapsed.Seconds()/tl[2].Elapsed.Seconds()
		fmt.Printf("\nproposed pricing reaches the loss target %.0f%% faster than uniform\n", saving*100)
	}

	overU, overW, err := cmp.UtilityGains()
	if err != nil {
		return err
	}
	fmt.Printf("client utility gains (Table IV): over uniform %.2f, over weighted %.2f\n", overU, overW)

	// Full markdown report (what cmd/flbench prints for every setup).
	fmt.Println("\n--- full report ---")
	return experiment.WriteComparisonReport(os.Stdout, cmp)
}
