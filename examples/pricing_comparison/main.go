// Pricing comparison: reproduce the paper's headline experiment (Fig. 4 and
// Tables II–IV) on one setup — the proposed customized pricing versus
// uniform and data-size-weighted pricing under the same budget — and
// demonstrate the open registry by entering a fourth, third-party scheme
// ("flat": every client gets an equal share of the budget as its price)
// into the same comparison without touching the game internals.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"unbiasedfl"
	"unbiasedfl/internal/experiment"
)

// flatScheme is the third-party mechanism: post the same total price B/N to
// every client regardless of data size or cost, and let the game evaluate
// the induced best responses. It implements unbiasedfl.PricingScheme.
type flatScheme struct{}

func (flatScheme) Name() string { return "flat" }

func (flatScheme) Price(p *unbiasedfl.GameParams) (*unbiasedfl.Outcome, error) {
	prices := make([]float64, p.N())
	for i := range prices {
		prices[i] = p.B / float64(p.N())
	}
	return p.OutcomeFor("flat", prices)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pricing_comparison:", err)
		os.Exit(1)
	}
}

func run() error {
	setup := flag.Int("setup", 2, "experimental setup (1, 2, or 3)")
	flag.Parse()
	ctx := context.Background()

	// Register the third-party scheme; from here on CompareSchemes and
	// RunSweep treat it exactly like the paper's built-ins.
	if err := unbiasedfl.RegisterScheme(flatScheme{}); err != nil {
		return err
	}
	defer unbiasedfl.UnregisterScheme("flat")

	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.SetupID(*setup),
		unbiasedfl.WithClients(10),
		unbiasedfl.WithRounds(80),
		unbiasedfl.WithRuns(2),
	)
	if err != nil {
		return err
	}
	env := sess.Environment()
	fmt.Printf("comparing pricing schemes on %v (budget %.1f): %v\n\n",
		env.ID, env.Params.B, unbiasedfl.SchemeNames())

	cmp, err := sess.CompareSchemes(ctx)
	if err != nil {
		return err
	}

	// Scheme-level economics.
	fmt.Println("scheme   | bound g(q)   | spent   | client utility | P<0")
	fmt.Println("---------+--------------+---------+----------------+----")
	for _, s := range cmp.Schemes {
		fmt.Printf("%-8v | %12.5g | %7.2f | %14.2f | %3d\n",
			s.Scheme, s.Outcome.ServerObj, s.Outcome.Spent,
			s.TotalClientUtility, s.NegativePayments)
	}

	// Time-to-target rows (Tables II and III).
	lossTarget := cmp.AdaptiveLossTarget()
	accTarget := cmp.AdaptiveAccuracyTarget()
	fmt.Printf("\ntime to loss <= %.4f and accuracy >= %.4f:\n", lossTarget, accTarget)
	tl := cmp.TimesToLoss(lossTarget)
	ta := cmp.TimesToAccuracy(accTarget)
	for i := range tl {
		lossStr, accStr := "never", "never"
		if tl[i].OK {
			lossStr = fmt.Sprintf("%.1fs", tl[i].Elapsed.Seconds())
		}
		if ta[i].OK {
			accStr = fmt.Sprintf("%.1fs", ta[i].Elapsed.Seconds())
		}
		fmt.Printf("  %-8v loss: %-8s accuracy: %s\n", tl[i].Scheme, lossStr, accStr)
	}

	// Savings headline, as the paper reports ("69% less time than uniform").
	proposed := cmp.Scheme(unbiasedfl.SchemeNameProposed)
	uniform := cmp.Scheme(unbiasedfl.SchemeNameUniform)
	if proposed != nil && uniform != nil {
		pt, pok := timeTo(tl, unbiasedfl.SchemeNameProposed)
		ut, uok := timeTo(tl, unbiasedfl.SchemeNameUniform)
		if pok && uok && ut > 0 {
			saving := 1 - pt/ut
			fmt.Printf("\nproposed pricing reaches the loss target %.0f%% faster than uniform\n", saving*100)
		}
	}

	overU, overW, err := cmp.UtilityGains()
	if err != nil {
		return err
	}
	fmt.Printf("client utility gains (Table IV): over uniform %.2f, over weighted %.2f\n", overU, overW)

	// Full markdown report (what cmd/flbench prints for every setup).
	fmt.Println("\n--- full report ---")
	return experiment.WriteComparisonReport(os.Stdout, cmp)
}

func timeTo(rows []experiment.TimeToTarget, scheme string) (seconds float64, ok bool) {
	for _, r := range rows {
		if r.Scheme == scheme {
			return r.Elapsed.Seconds(), r.OK
		}
	}
	return 0, false
}
