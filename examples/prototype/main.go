// Prototype: run the paper's cross-device hardware prototype in miniature —
// a coordinator and a fleet of client nodes communicating over real TCP
// sockets on localhost, with client-side Bernoulli(q_n) participation and
// server-side unbiased aggregation (Lemma 1). On real hardware, run
// cmd/flnode on each device instead.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"time"

	"unbiasedfl"
	"unbiasedfl/internal/fl"
	"unbiasedfl/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prototype:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		numClients = 8
		rounds     = 30
		localSteps = 5
	)
	// Ctrl-C cancels the whole federation — coordinator and every device
	// node unwind through their contexts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup2,
		unbiasedfl.WithClients(numClients),
		unbiasedfl.WithRounds(rounds),
		unbiasedfl.WithLocalSteps(localSteps),
	)
	if err != nil {
		return err
	}
	env := sess.Environment()

	// Price the market with the proposed mechanism; the equilibrium q*
	// becomes each device's autonomous participation probability.
	eq, err := sess.Equilibrium()
	if err != nil {
		return err
	}
	q := make([]float64, numClients)
	for i, qi := range eq.Q {
		if qi < env.Params.QMin {
			qi = env.Params.QMin
		}
		q[i] = qi
	}

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: numClients,
		Q:          q,
		Weights:    env.Fed.Weights,
		Rounds:     rounds,
		LocalSteps: localSteps,
		BatchSize:  16,
		Schedule:   fl.ExpDecay{Eta0: 0.1, Decay: 0.996},
		Timeout:    time.Minute,
	}, env.Model)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	fmt.Printf("coordinator listening on %s; launching %d device nodes\n", srv.Addr(), numClients)

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		node, err := transport.NewClient(transport.ClientConfig{
			Addr: srv.Addr(), ID: id, Seed: uint64(1000 + id), Timeout: time.Minute,
		}, env.Model, env.Fed.Clients[id])
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			joined, err := node.Run(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "client %d: %v\n", id, err)
				return
			}
			fmt.Printf("device %d done: joined %d/%d rounds (q=%.3f)\n", id, joined, rounds, q[id])
		}(id)
	}

	result, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		return err
	}
	loss, err := env.Model.Loss(result.FinalModel, env.Fed.Train)
	if err != nil {
		return err
	}
	acc, err := env.Model.Accuracy(result.FinalModel, env.Fed.Test)
	if err != nil {
		return err
	}
	fmt.Printf("\nTCP training complete: global loss %.4f, test accuracy %.4f\n", loss, acc)
	return nil
}
