// Serving: drive the equilibrium-as-a-service daemon end to end from a
// plain HTTP client. The example boots an in-process flserve on a loopback
// port, quotes a hand-built CPL game under two schemes (the second quote
// of each is answered from the sharded cache), starts a federation session
// for a custom tiny scenario, follows its Server-Sent-Events stream live,
// fetches the canonical trace, and shuts the daemon down gracefully —
// exactly the flow an external tenant would run against cmd/flserve.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"unbiasedfl/internal/scenario"
	"unbiasedfl/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	// Boot the daemon on an ephemeral loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := serve.New(serve.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon up at %s\n\n", base)

	// Quote the same game twice: the repeat is served from the cache.
	quote := serve.QuoteRequest{
		Scheme: "proposed",
		Params: serve.ParamsJSON{
			A:     []float64{0.4, 0.35, 0.25},
			G:     []float64{0.5, 0.8, 1.1},
			C:     []float64{40, 55, 70},
			V:     []float64{3000, 4500, 6000},
			Alpha: 1, Beta: 1, R: 100, B: 200,
		},
	}
	for _, scheme := range []string{"proposed", "uniform"} {
		quote.Scheme = scheme
		for attempt := 1; attempt <= 2; attempt++ {
			var resp serve.QuoteResponse
			if err := post(base+"/v1/quote", quote, &resp); err != nil {
				return err
			}
			if attempt == 1 {
				fmt.Printf("%-8s spent %8.2f of budget, prices %v\n", scheme, resp.Spent, round2(resp.P))
			}
		}
	}

	// Start a session for a custom tiny scenario and follow its SSE stream.
	sc := scenario.Scenario{
		Name: "serve-demo", Description: "examples/serve fixture",
		Setup: 1, Clients: 4, Rounds: 6, LocalSteps: 2,
		BatchSize: 8, EvalEvery: 2, Calibration: 1, Seed: 7,
	}
	var st serve.SessionStatus
	if err := post(base+"/v1/sessions", serve.SessionRequest{Spec: &sc}, &st); err != nil {
		return err
	}
	fmt.Printf("\nsession %s (%s) accepted, streaming events:\n", st.ID, st.Label)

	events, err := http.Get(base + "/v1/sessions/" + st.ID + "/events")
	if err != nil {
		return err
	}
	defer events.Body.Close()
	lines := bufio.NewScanner(events.Body)
	var typ string
	for lines.Scan() {
		line := lines.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fmt.Printf("  %-14s %s\n", typ, strings.TrimPrefix(line, "data: "))
		}
		if line == "" && (typ == "done" || typ == "error" || typ == "cancelled") {
			break
		}
	}
	if err := lines.Err(); err != nil {
		return err
	}

	// Fetch the canonical trace — byte-identical to a direct facade run.
	res, err := http.Get(base + "/v1/sessions/" + st.ID + "/result")
	if err != nil {
		return err
	}
	trace, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("\ncanonical trace: %d bytes\n", len(trace))

	// Graceful shutdown: cancel the serve context and wait for the drain.
	cancel()
	if err := <-done; err != nil {
		return err
	}
	fmt.Println("daemon drained cleanly")
	return nil
}

func post(url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func round2(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*100)) / 100
	}
	return out
}
