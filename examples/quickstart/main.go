// Quickstart: build the paper's Setup 1 world as a Session, solve the CPL
// Stackelberg game, inspect the equilibrium, and train one model under the
// proposed pricing with streamed per-round progress. This is the smallest
// end-to-end tour of the public API.
package main

import (
	"context"
	"fmt"
	"os"

	"unbiasedfl"
	"unbiasedfl/internal/data"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// 1. Build an experimental world: Synthetic(1,1) data across clients,
	// calibrated G_n estimates, Table-I economics, a device timing model.
	// Functional options scale it; the observer streams typed events.
	sess, err := unbiasedfl.NewSession(ctx, unbiasedfl.Setup1,
		unbiasedfl.WithClients(8),
		unbiasedfl.WithRounds(60),
		unbiasedfl.WithRuns(1),
		unbiasedfl.WithObserver(unbiasedfl.ObserverFunc(func(e unbiasedfl.Event) {
			if r, ok := e.(unbiasedfl.RoundEnd); ok && r.Evaluated {
				fmt.Printf("  [stream] round %3d: loss %.4f accuracy %.4f\n",
					r.Round, r.Loss, r.Accuracy)
			}
		})),
	)
	if err != nil {
		return err
	}
	env := sess.Environment()
	fmt.Printf("built %v: %d clients, %d training samples\n\n",
		env.ID, env.Fed.NumClients(), env.Fed.Train.Len())
	if err := data.WriteSummary(os.Stdout, env.Fed); err != nil {
		return err
	}

	// 2. Solve the Stackelberg equilibrium: customized prices P* and the
	// clients' best-response participation levels q*.
	eq, err := sess.Equilibrium()
	if err != nil {
		return err
	}
	fmt.Printf("\nequilibrium: spend %.2f of budget %.2f, threshold v_t = %.4g\n",
		eq.Spent, env.Params.B, eq.Vt())
	for n := range eq.Q {
		direction := "server pays client"
		if eq.P[n] < 0 {
			direction = "client pays server"
		}
		fmt.Printf("  client %d: q* = %.3f, P* = %8.2f (%s)\n",
			n, eq.Q[n], eq.P[n], direction)
	}

	// 3. Train under the proposed pricing with unbiased aggregation; the
	// observer above streams rounds as they complete, and the returned run
	// holds the averaged timed trajectory.
	fmt.Println("\ntraining under proposed pricing:")
	sr, err := sess.RunScheme(ctx, unbiasedfl.SchemeNameProposed)
	if err != nil {
		return err
	}
	fmt.Println("\naveraged timed trajectory:")
	for _, pt := range sr.Points {
		fmt.Printf("  t=%6.1fs  loss=%.4f  accuracy=%.4f\n",
			pt.Elapsed.Seconds(), pt.Loss, pt.Accuracy)
	}
	fmt.Printf("\nfinal loss %.4f, final accuracy %.4f\n", sr.FinalLoss, sr.FinalAccuracy)
	return nil
}
