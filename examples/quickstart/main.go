// Quickstart: build the paper's Setup 1 world, solve the CPL Stackelberg
// game, inspect the equilibrium, and train one model under the proposed
// pricing. This is the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"os"

	"unbiasedfl"
	"unbiasedfl/internal/data"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Build an experimental world: Synthetic(1,1) data across clients,
	// calibrated G_n estimates, Table-I economics, a device timing model.
	opts := unbiasedfl.DefaultOptions()
	opts.NumClients = 8
	opts.Rounds = 60
	opts.Runs = 1
	env, err := unbiasedfl.NewSetup(unbiasedfl.Setup1, opts)
	if err != nil {
		return err
	}
	fmt.Printf("built %v: %d clients, %d training samples\n\n",
		env.ID, env.Fed.NumClients(), env.Fed.Train.Len())
	if err := data.WriteSummary(os.Stdout, env.Fed); err != nil {
		return err
	}

	// 2. Solve the Stackelberg equilibrium: customized prices P* and the
	// clients' best-response participation levels q*.
	eq, err := env.Params.SolveKKT()
	if err != nil {
		return err
	}
	fmt.Printf("\nequilibrium: spend %.2f of budget %.2f, threshold v_t = %.4g\n",
		eq.Spent, env.Params.B, eq.Vt())
	for n := range eq.Q {
		direction := "server pays client"
		if eq.P[n] < 0 {
			direction = "client pays server"
		}
		fmt.Printf("  client %d: q* = %.3f, P* = %8.2f (%s)\n",
			n, eq.Q[n], eq.P[n], direction)
	}

	// 3. Train under the proposed pricing with unbiased aggregation and
	// report the timed trajectory.
	sr, err := unbiasedfl.RunScheme(env, unbiasedfl.SchemeOptimal)
	if err != nil {
		return err
	}
	fmt.Println("\ntraining under proposed pricing:")
	for _, pt := range sr.Points {
		fmt.Printf("  t=%6.1fs  loss=%.4f  accuracy=%.4f\n",
			pt.Elapsed.Seconds(), pt.Loss, pt.Accuracy)
	}
	fmt.Printf("\nfinal loss %.4f, final accuracy %.4f\n", sr.FinalLoss, sr.FinalAccuracy)
	return nil
}
