// Scenarios: tour the scenario engine. Replays a library scenario and its
// fault-free twin to show what the fault schedule does to participation and
// wall clock, defines a custom scenario from scratch, and finishes by
// running the same custom world as a real multi-node TCP federation through
// the cluster harness.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"unbiasedfl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// 1. The named library: every entry is a complete, replayable world.
	fmt.Println("scenario library:")
	for _, sc := range unbiasedfl.Scenarios() {
		fmt.Printf("  %-20s %s\n", sc.Name, sc.Description)
	}

	// 2. Replay "churn" and its fault-free twin at the same seed. The only
	// difference is the fault schedule, so the participation gap below is
	// exactly what intermittent availability costs the server.
	faulted, err := unbiasedfl.ScenarioByName("churn")
	if err != nil {
		return err
	}
	clean := faulted
	clean.Faults = nil
	ft, err := unbiasedfl.RunScenario(ctx, faulted)
	if err != nil {
		return err
	}
	ct, err := unbiasedfl.RunScenario(ctx, clean)
	if err != nil {
		return err
	}
	fmt.Printf("\n%q vs its fault-free twin (seed %d):\n", faulted.Name, faulted.Seed)
	fmt.Println("client | priced q | joined (faulted) | joined (clean)")
	for n := range ft.Participation {
		fmt.Printf("%6d | %8.3f | %16d | %d\n",
			n, ft.Equilibrium.Q[n], ft.Participation[n], ct.Participation[n])
	}
	fmt.Printf("faulted final loss %.4f vs clean %.4f\n", ft.FinalLoss, ct.FinalLoss)

	// 3. A custom scenario is just a struct: pick a setup, scale the
	// economics, and schedule faults. Anything a library entry can do, a
	// custom world can too — including third-party pricing schemes
	// registered via RegisterScheme.
	custom := unbiasedfl.Scenario{
		Name:        "flash-crowd",
		Description: "cheap fleet, tight budget, and the fastest client drops out early",
		Setup:       unbiasedfl.Setup1,
		Clients:     5, TotalSamples: 500,
		Rounds: 12, LocalSteps: 3, BatchSize: 8,
		Seed:        2024,
		BudgetScale: 0.5,
		CostSpread:  0.8,
		Faults: []unbiasedfl.ClientFault{
			{Client: 0, Kind: unbiasedfl.FaultDropout, Round: 4},
			{Client: 3, Kind: unbiasedfl.FaultStraggler, DelayFactor: 5},
		},
	}
	trace, err := unbiasedfl.RunScenario(ctx, custom)
	if err != nil {
		return err
	}
	fmt.Printf("\ncustom %q: spent %.2f, sim clock %.1fs, final loss %.4f\n",
		trace.Scenario, trace.Equilibrium.Spent, trace.SimTimeS, trace.FinalLoss)

	// 4. The same world as a real federation: the unified engine points the
	// identical orchestrated run at its cluster backend — a TCP coordinator
	// and five socket nodes on loopback — and the resulting trace is
	// byte-identical to the in-process one.
	res, err := unbiasedfl.RunScenarioCluster(ctx, custom, unbiasedfl.ClusterConfig{
		Timeout: 30 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nsame scenario over TCP loopback:")
	for n, cnt := range res.Participation {
		status := "ok"
		if res.DroppedAt[n] >= 0 {
			status = fmt.Sprintf("dropped at round %d", res.DroppedAt[n])
		}
		fmt.Printf("  client %d: joined %2d rounds (%s)\n", n, cnt, status)
	}
	inb, err := trace.Canonical()
	if err != nil {
		return err
	}
	clb, err := res.Canonical()
	if err != nil {
		return err
	}
	fmt.Printf("cluster trace identical to in-process trace: %v\n", string(inb) == string(clb))
	return nil
}
