package unbiasedfl

import (
	"unbiasedfl/internal/game"
)

// PricingScheme is an open pricing mechanism: anything with a registry name
// and a Price method over the game parameters. Implementations typically
// compute a posted price vector and let GameParams.OutcomeFor evaluate it
// into a full Outcome (best responses, spend, Theorem-1 objective).
type PricingScheme = game.PricingScheme

// Registry names of the paper's built-in schemes.
const (
	// SchemeNameProposed is the paper's customized equilibrium pricing.
	SchemeNameProposed = game.SchemeNameProposed
	// SchemeNameWeighted pays proportionally to data size.
	SchemeNameWeighted = game.SchemeNameWeighted
	// SchemeNameUniform pays every client the same unit price.
	SchemeNameUniform = game.SchemeNameUniform
)

// RegisterScheme adds a pricing scheme to the global registry. Registered
// schemes participate in CompareSchemes and (via WithSweepScheme) RunSweep
// alongside the paper's built-ins — no changes to the game internals
// required. It errors on a nil scheme, an empty name, or a duplicate.
func RegisterScheme(s PricingScheme) error { return game.RegisterScheme(s) }

// UnregisterScheme removes a scheme by name and reports whether it was
// present.
func UnregisterScheme(name string) bool { return game.UnregisterScheme(name) }

// SchemeByName looks up a registered pricing scheme.
func SchemeByName(name string) (PricingScheme, error) { return game.SchemeByName(name) }

// SchemeNames lists every registered scheme in canonical comparison order:
// the paper's trio first, then third-party registrations in registration
// order.
func SchemeNames() []string { return game.SchemeNames() }
